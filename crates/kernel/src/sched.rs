//! A deterministic scheduler over kernel threads, built on sharded run
//! queues with O(1) wake.
//!
//! The paper's kernel schedules threads; this reproduction historically let
//! library code drive every thread to completion as nested function calls,
//! so `ThreadState::Runnable` existed with nothing that ever *ran* a
//! thread.  This module closes that gap for the simulated machine:
//!
//! * every scheduled thread is represented by a **program** — a state
//!   machine stepped one quantum at a time, issuing its kernel work through
//!   [`Kernel::dispatch`](crate::kernel::Kernel) on its own thread ID;
//! * the [`Scheduler`] spreads threads over **shards**: each shard owns its
//!   own run queue and wait set, a thread's shard is a seeded hash of its
//!   admission order, and a seed-fixed rotation visits the shards taking
//!   one quantum from each non-empty queue per revolution.  With one shard
//!   this degenerates to the classic global round-robin; with many, queue
//!   and wait-set operations touch only the owning shard, which is what
//!   lets the wait side hold 10⁵ parked users without any global scan;
//! * waking is **O(events)**: parked threads are re-examined only when the
//!   kernel marks them sched-dirty, and eligibility is a single
//!   [`Kernel::wake_eligibility`] probe against per-thread wake-state bits
//!   (maintained at alert-post, completion-push and `sched_wake` time),
//!   not a walk over the thread's alert and completion queues;
//! * scheduling is **deterministic**: shard assignment, shard visit order
//!   and admission tie-breaks are pure functions of the seed and the spawn
//!   order, and wakes within a shard apply in park order — so the same
//!   seed and shard count replay the identical interleaving, and, with
//!   tracing enabled, the identical syscall audit stream.
//!
//! Programs run against a caller-supplied context type implementing
//! [`SchedContext`] (the kernel itself, a whole [`Machine`], or a library
//! environment wrapping one), which is how untrusted user-level libraries
//! — the Unix environment, the auth services — are multiprogrammed without
//! the kernel crate knowing about them.

use crate::kernel::{Kernel, WakeReason};
use crate::machine::Machine;
use crate::object::ObjectId;
use histar_sim::{SimDuration, SimRng};
use std::collections::{BTreeMap, VecDeque};

/// What a program reports at the end of one quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The quantum is used up; schedule me again later.
    Yield,
    /// Block until an alert arrives for this thread.
    Block,
    /// The program is finished; halt the thread and retire it.
    Done,
}

/// A scheduled thread's user-level program: called once per quantum with
/// the shared context and the thread's own ID.
pub type Program<Ctx> = Box<dyn FnMut(&mut Ctx, ObjectId) -> Step>;

/// Anything a scheduler can run programs against.  The only requirement is
/// reaching the kernel (for thread states, wakeups and cost accounting).
pub trait SchedContext {
    /// The kernel the scheduled threads live in.
    fn sched_kernel(&mut self) -> &mut Kernel;
}

impl SchedContext for Kernel {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self
    }
}

impl SchedContext for Machine {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self.kernel_mut()
    }
}

/// Default number of run-queue shards.
pub const DEFAULT_SHARDS: usize = 8;

/// Default quantum charged per program step.
pub const DEFAULT_QUANTUM: SimDuration = SimDuration::from_micros(50);

/// Construction-time parameters for a [`Scheduler`], built fluently:
///
/// ```ignore
/// let sched = Scheduler::new(SchedConfig::new().seed(7).shards(16));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedConfig {
    /// Seed fixing every tie-break: shard assignment, shard visit order
    /// and admission-batch shuffles.
    pub seed: u64,
    /// CPU time charged per program step.
    pub quantum: SimDuration,
    /// Number of run-queue shards (at least 1).
    pub shards: usize,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            seed: 0,
            quantum: DEFAULT_QUANTUM,
            shards: DEFAULT_SHARDS,
        }
    }
}

impl SchedConfig {
    /// The default configuration (seed 0, 50µs quantum, 8 shards).
    pub fn new() -> SchedConfig {
        SchedConfig::default()
    }

    /// Sets the scheduler seed.
    pub fn seed(mut self, seed: u64) -> SchedConfig {
        self.seed = seed;
        self
    }

    /// Sets the quantum charged per program step.
    pub fn quantum(mut self, quantum: SimDuration) -> SchedConfig {
        self.quantum = quantum;
        self
    }

    /// Sets the shard count (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> SchedConfig {
        self.shards = shards.max(1);
        self
    }
}

/// Bounds on one [`Scheduler::run`] invocation.
#[derive(Clone, Copy, Debug)]
pub struct RunLimit {
    /// Maximum quanta to execute before returning.
    pub max_quanta: u64,
    /// Stop once the simulated clock passes this time, if set.
    pub deadline: Option<SimDuration>,
}

impl RunLimit {
    /// Run at most `n` quanta.
    pub fn quanta(n: u64) -> RunLimit {
        RunLimit {
            max_quanta: n,
            deadline: None,
        }
    }

    /// Run until every program completes or blocks forever (with a large
    /// safety bound so a buggy program cannot spin the host).
    pub fn to_completion() -> RunLimit {
        RunLimit {
            max_quanta: 10_000_000,
            deadline: None,
        }
    }

    /// Additionally stop at a simulated-time deadline.
    pub fn until(mut self, deadline: SimDuration) -> RunLimit {
        self.deadline = Some(deadline);
        self
    }
}

/// Why [`Scheduler::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every scheduled program has completed (or its thread halted).
    AllComplete,
    /// The quantum budget ran out.
    QuantaExhausted,
    /// The simulated-time deadline passed.
    DeadlinePassed,
    /// Only blocked threads remain and none has a pending wake event.
    AllBlocked,
}

/// Counters describing one or more [`Scheduler::run`] invocations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Quanta executed (program steps).
    pub quanta: u64,
    /// Context switches performed (one per quantum that changed threads).
    pub context_switches: u64,
    /// Programs retired (completed or found halted).
    pub completed: u64,
    /// Blocked threads woken because an alert was pending.
    pub alert_wakeups: u64,
    /// Blocked threads woken because a completion landed on their
    /// completion queue.
    pub completion_wakeups: u64,
    /// Parked threads found already runnable (an explicit `sched_wake`).
    pub external_wakeups: u64,
    /// Wake passes that had at least one sched-dirty thread to examine.
    pub wake_passes: u64,
    /// Parked threads re-examined across all wake passes.  The O(events)
    /// guarantee in numbers: this tracks dirtied threads, not the parked
    /// population, so 10⁵ idle users cost nothing here.
    pub wake_examined: u64,
    /// Most threads ever parked at once (a level, not a count).
    pub parked_high_water: u64,
}

impl SchedStats {
    /// The per-run delta between two snapshots: counters subtract;
    /// `parked_high_water` is a level and carries the later value.
    pub fn since(&self, before: &SchedStats) -> SchedStats {
        SchedStats {
            quanta: self.quanta - before.quanta,
            context_switches: self.context_switches - before.context_switches,
            completed: self.completed - before.completed,
            alert_wakeups: self.alert_wakeups - before.alert_wakeups,
            completion_wakeups: self.completion_wakeups - before.completion_wakeups,
            external_wakeups: self.external_wakeups - before.external_wakeups,
            wake_passes: self.wake_passes - before.wake_passes,
            wake_examined: self.wake_examined - before.wake_examined,
            parked_high_water: self.parked_high_water,
        }
    }
}

impl histar_obs::MetricSource for SchedStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("sched.quanta", self.quanta);
        set.counter("sched.context_switches", self.context_switches);
        set.counter("sched.completed", self.completed);
        set.counter("sched.alert_wakeups", self.alert_wakeups);
        set.counter("sched.completion_wakeups", self.completion_wakeups);
        set.counter("sched.external_wakeups", self.external_wakeups);
        set.counter("sched.wake_passes", self.wake_passes);
        set.counter("sched.wake_examined", self.wake_examined);
        set.gauge("sched.parked_high_water", self.parked_high_water);
    }
}

/// The result of one [`Scheduler::run`] invocation: the per-run
/// [`SchedStats`] delta plus why the run stopped and what it cost.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleReport {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Counter deltas for this run (see [`SchedStats::since`]).
    pub stats: SchedStats,
    /// Programs still scheduled (runnable or blocked) at return.
    pub remaining: usize,
    /// Simulated time consumed by this run.
    pub elapsed: SimDuration,
}

/// One run-queue shard: a FIFO of runnable threads plus the shard's own
/// wait set (parked thread → park sequence number).
#[derive(Default)]
struct Shard {
    queue: VecDeque<ObjectId>,
    waiting: BTreeMap<ObjectId, u64>,
}

/// SplitMix64: the shard-assignment hash.  A fixed, seedable avalanche so
/// shard placement is a pure function of (seed, admission index).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic scheduler over sharded run queues.
///
/// `Ctx` is the shared world the programs mutate — see [`SchedContext`].
pub struct Scheduler<Ctx> {
    config: SchedConfig,
    rng: SimRng,
    shards: Vec<Shard>,
    /// Seed-fixed shard visit order; the rotation cursor walks this.
    visit: Vec<usize>,
    cursor: usize,
    /// Which shard each scheduled thread was assigned to.
    shard_of: BTreeMap<ObjectId, usize>,
    /// Threads admitted so far; feeds the shard-assignment hash.
    admitted: u64,
    /// Monotonic counter stamping each park, for deterministic wake order.
    park_seq: u64,
    /// Runnable threads across all shard queues.
    queued: usize,
    /// Parked threads across all shard wait sets.
    parked: usize,
    pending: Vec<ObjectId>,
    programs: BTreeMap<ObjectId, Program<Ctx>>,
    last_run: Option<ObjectId>,
    stats: SchedStats,
}

impl<Ctx: SchedContext> Scheduler<Ctx> {
    /// Creates a scheduler from its configuration.
    pub fn new(config: SchedConfig) -> Scheduler<Ctx> {
        let shards = config.shards.max(1);
        let mut visit: Vec<usize> = (0..shards).collect();
        // The visit order is drawn from its own seeded stream so admission
        // shuffles are unaffected by the shard count.
        SimRng::new(config.seed ^ 0x51a2_d0e5).shuffle(&mut visit);
        Scheduler {
            config,
            rng: SimRng::new(config.seed ^ 0x5ced_5ced),
            shards: (0..shards).map(|_| Shard::default()).collect(),
            visit,
            cursor: 0,
            shard_of: BTreeMap::new(),
            admitted: 0,
            park_seq: 0,
            queued: 0,
            parked: 0,
            pending: Vec::new(),
            programs: BTreeMap::new(),
            last_run: None,
            stats: SchedStats::default(),
        }
    }

    /// Creates a scheduler from a bare seed and quantum.
    #[deprecated(note = "use Scheduler::new(SchedConfig::new().seed(..).quantum(..))")]
    pub fn from_seed_quantum(seed: u64, quantum: SimDuration) -> Scheduler<Ctx> {
        Scheduler::new(SchedConfig::new().seed(seed).quantum(quantum))
    }

    /// Schedules `program` to run as thread `tid`.  Threads spawned between
    /// two `run` calls form one admission batch whose queue order is
    /// decided by the scheduler seed.
    pub fn spawn(&mut self, tid: ObjectId, program: Program<Ctx>) {
        self.programs.insert(tid, program);
        self.pending.push(tid);
    }

    /// Number of threads still scheduled (runnable or blocked).
    pub fn scheduled(&self) -> usize {
        self.programs.len()
    }

    /// Aggregate counters across all runs.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> SchedConfig {
        self.config
    }

    /// The configured quantum.
    pub fn quantum(&self) -> SimDuration {
        self.config.quantum
    }

    /// Current depth of each shard's run queue, in shard order.
    pub fn shard_queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue.len()).collect()
    }

    /// Admits the pending batch: seeded-shuffle, then hash each thread to
    /// its shard.  The shuffle is the scheduler's only use of randomness
    /// and is fully determined by the seed and the spawn order; the shard
    /// is a pure function of (seed, admission index).
    fn admit_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.pending);
        self.rng.shuffle(&mut batch);
        for tid in batch {
            let shard =
                (splitmix64(self.config.seed ^ self.admitted) % self.shards.len() as u64) as usize;
            self.admitted += 1;
            self.shard_of.insert(tid, shard);
            self.shards[shard].queue.push_back(tid);
            self.queued += 1;
        }
    }

    /// Pops the next thread under the rotation: starting at the cursor,
    /// the first non-empty shard in the seed-fixed visit order gives up
    /// its queue head, and the cursor moves past it — one quantum per
    /// non-empty shard per revolution.
    fn pop_next(&mut self) -> Option<ObjectId> {
        if self.queued == 0 {
            return None;
        }
        let n = self.visit.len();
        for i in 0..n {
            let at = (self.cursor + i) % n;
            let shard = self.visit[at];
            if let Some(tid) = self.shards[shard].queue.pop_front() {
                self.cursor = (at + 1) % n;
                self.queued -= 1;
                return Some(tid);
            }
        }
        None
    }

    /// Requeues a runnable thread at the tail of its own shard.
    fn requeue(&mut self, tid: ObjectId) {
        let shard = self.shard_of[&tid];
        self.shards[shard].queue.push_back(tid);
        self.queued += 1;
    }

    /// Parks a thread in its shard's wait set and marks it sched-dirty so
    /// the next wake pass re-checks it once: a completion or alert that
    /// landed during the thread's final quantum (submit-then-block) must
    /// not be lost just because the event preceded the park.
    fn park(&mut self, ctx: &mut Ctx, tid: ObjectId) {
        self.park_seq += 1;
        let shard = self.shard_of[&tid];
        self.shards[shard].waiting.insert(tid, self.park_seq);
        self.parked += 1;
        self.stats.parked_high_water = self.stats.parked_high_water.max(self.parked as u64);
        ctx.sched_kernel().sched_mark_dirty(tid);
    }

    /// Drops a thread from the scheduler entirely (halted or deallocated).
    fn retire(&mut self, tid: ObjectId) {
        self.programs.remove(&tid);
        self.shard_of.remove(&tid);
        self.stats.completed += 1;
    }

    /// Re-examines exactly the parked threads whose wake conditions may
    /// have changed — the kernel's sched-dirty list — and moves the
    /// eligible ones back to their shard's run queue.  Eligibility is one
    /// [`Kernel::wake_eligibility`] probe per dirtied thread: the kernel
    /// maintains per-thread wake-state bits at alert/completion time, so
    /// the pass never walks a thread's queues.  Shards are visited in the
    /// seed-fixed order and wakes within a shard apply in park order,
    /// keeping the interleaving a pure function of (seed, shard count).
    /// Threads with no event stay parked untouched, so 10⁵ idle users
    /// cost nothing here.
    fn wake_waiters(&mut self, ctx: &mut Ctx) {
        let dirty = ctx.sched_kernel().take_sched_dirty();
        if dirty.is_empty() {
            return;
        }
        self.stats.wake_passes += 1;
        let mut hits: Vec<Vec<(u64, ObjectId)>> = vec![Vec::new(); self.shards.len()];
        for tid in dirty {
            if let Some(&shard) = self.shard_of.get(&tid) {
                if let Some(&seq) = self.shards[shard].waiting.get(&tid) {
                    hits[shard].push((seq, tid));
                }
            }
        }
        for vi in 0..self.visit.len() {
            let shard = self.visit[vi];
            let mut shard_hits = std::mem::take(&mut hits[shard]);
            shard_hits.sort_unstable();
            for (_, tid) in shard_hits {
                self.stats.wake_examined += 1;
                let kernel = ctx.sched_kernel();
                let unpark = match kernel.wake_eligibility(tid) {
                    WakeReason::Retired => {
                        self.shards[shard].waiting.remove(&tid);
                        self.parked -= 1;
                        self.retire(tid);
                        continue;
                    }
                    WakeReason::External => {
                        // Already runnable: an explicit sched_wake.
                        self.stats.external_wakeups += 1;
                        true
                    }
                    WakeReason::Alert => {
                        let _ = kernel.sched_wake(tid);
                        self.stats.alert_wakeups += 1;
                        true
                    }
                    WakeReason::Completion => {
                        let _ = kernel.sched_wake(tid);
                        self.stats.completion_wakeups += 1;
                        true
                    }
                    // The event was spurious: stay parked.
                    WakeReason::Parked => false,
                };
                if unpark {
                    self.shards[shard].waiting.remove(&tid);
                    self.parked -= 1;
                    self.shards[shard].queue.push_back(tid);
                    self.queued += 1;
                }
            }
        }
    }

    /// Runs scheduled programs under the shard rotation until `limit` is
    /// reached, every program completes, or only hopelessly blocked
    /// threads remain.
    ///
    /// Blocked threads live in their shard's wait set, not the run queue:
    /// they are charged no quanta and never stepped until a completion or
    /// alert wakes them.  Each `run` is a fresh occupancy of the CPU: the
    /// first quantum always charges a context switch (`last_run` does not
    /// leak across invocations).
    pub fn run(&mut self, ctx: &mut Ctx, limit: RunLimit) -> ScheduleReport {
        self.last_run = None;
        self.admit_pending();
        let start = ctx.sched_kernel().now();
        let before = self.stats;
        let stop = loop {
            self.wake_waiters(ctx);
            if self.queued == 0 {
                break if self.parked == 0 {
                    StopReason::AllComplete
                } else {
                    StopReason::AllBlocked
                };
            }
            if self.stats.quanta - before.quanta >= limit.max_quanta {
                break StopReason::QuantaExhausted;
            }
            if let Some(deadline) = limit.deadline {
                if ctx.sched_kernel().now() >= deadline {
                    break StopReason::DeadlinePassed;
                }
            }
            let tid = self.pop_next().expect("queued count checked non-zero");
            match ctx.sched_kernel().wake_eligibility(tid) {
                // A halted (or deallocated) thread is retired without
                // running: self_halt and thread teardown are honored here.
                WakeReason::Retired => {
                    self.retire(tid);
                    continue;
                }
                WakeReason::Alert | WakeReason::Completion | WakeReason::Parked => {
                    // Blocked outside the scheduler's own Step::Block path
                    // (e.g. a direct sched_block): park it.
                    self.park(ctx, tid);
                    continue;
                }
                WakeReason::External => {}
            }

            // Charge the switch onto this thread and its timeslice.
            let (recorder, quantum_start) = {
                let kernel = ctx.sched_kernel();
                let quantum_start = kernel.now().as_nanos();
                if self.last_run != Some(tid) {
                    let _ = kernel.sched_context_switch(tid);
                    self.stats.context_switches += 1;
                    kernel.recorder().record(histar_obs::Span {
                        cat: "sched",
                        name: "context_switch",
                        start: quantum_start,
                        end: kernel.now().as_nanos(),
                        tid: tid.raw(),
                        seq: self.stats.context_switches,
                    });
                }
                kernel.sched_charge(self.config.quantum);
                (kernel.recorder().clone(), quantum_start)
            };
            self.last_run = Some(tid);
            self.stats.quanta += 1;

            let mut program = self
                .programs
                .remove(&tid)
                .expect("every queued thread has a program");
            let step = program(ctx, tid);
            recorder.record(histar_obs::Span {
                cat: "sched",
                name: "quantum",
                start: quantum_start,
                end: ctx.sched_kernel().now().as_nanos(),
                tid: tid.raw(),
                seq: self.stats.quanta,
            });
            match step {
                Step::Yield => {
                    self.programs.insert(tid, program);
                    self.requeue(tid);
                }
                Step::Block => {
                    let _ = ctx.sched_kernel().sched_block(tid);
                    self.programs.insert(tid, program);
                    self.park(ctx, tid);
                }
                Step::Done => {
                    // Halt through the trap boundary so the audit trace
                    // records the thread's exit like any other syscall.
                    let _ = ctx.sched_kernel().trap_self_halt(tid);
                    self.shard_of.remove(&tid);
                    self.stats.completed += 1;
                }
            }
            // Admit any threads the program spawned during its quantum.
            self.admit_pending();
        };
        self.publish_metrics(ctx);
        let after = self.stats;
        ScheduleReport {
            stop,
            stats: after.since(&before),
            remaining: self.programs.len(),
            elapsed: ctx.sched_kernel().now() - start,
        }
    }

    /// Publishes the scheduler's counters and per-shard queue gauges to
    /// the kernel's metric registry, making them visible at `/metrics`.
    fn publish_metrics(&self, ctx: &mut Ctx) {
        let mut set = histar_obs::MetricSet::new();
        set.collect(&self.stats);
        for (i, shard) in self.shards.iter().enumerate() {
            set.gauge_indexed("sched.shard_queue_depth", i, shard.queue.len() as u64);
            set.gauge_indexed("sched.shard_parked", i, shard.waiting.len() as u64);
        }
        ctx.sched_kernel().publish_sched_metrics(set);
    }
}

impl Machine {
    /// Drives a scheduler over this machine until `limit` is reached or all
    /// programs complete — the machine-level "run the CPU" loop.
    pub fn run_until(&mut self, sched: &mut Scheduler<Machine>, limit: RunLimit) -> ScheduleReport {
        sched.run(self, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::object::ContainerEntry;
    use histar_label::Label;

    fn spawn_thread(m: &mut Machine, name: &str) -> ObjectId {
        let boot = m.kernel_thread();
        let root = m.kernel().root_container();
        m.kernel_mut()
            .trap_thread_create(
                boot,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                name,
            )
            .unwrap()
    }

    /// A program that appends `tag` to a shared segment `n` times, one
    /// write per quantum.
    fn writer(entry: ContainerEntry, tag: u8, n: usize) -> Program<Machine> {
        let mut remaining = n;
        Box::new(move |m: &mut Machine, tid: ObjectId| {
            let len = m.kernel_mut().trap_segment_len(tid, entry).unwrap();
            m.kernel_mut()
                .trap_segment_write(tid, entry, len, &[tag])
                .unwrap();
            remaining -= 1;
            if remaining == 0 {
                Step::Done
            } else {
                Step::Yield
            }
        })
    }

    fn interleaving(config: SchedConfig) -> (Vec<u8>, ScheduleReport) {
        let mut m = Machine::boot(MachineConfig::default());
        let boot = m.kernel_thread();
        let root = m.kernel().root_container();
        let seg = m
            .kernel_mut()
            .trap_segment_create(boot, root, Label::unrestricted(), 0, "log")
            .unwrap();
        let entry = ContainerEntry::new(root, seg);
        let mut sched: Scheduler<Machine> = Scheduler::new(config);
        for (i, tag) in [b'a', b'b', b'c'].into_iter().enumerate() {
            let tid = spawn_thread(&mut m, &format!("w{i}"));
            sched.spawn(tid, writer(entry, tag, 3));
        }
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        let len = {
            let boot = m.kernel_thread();
            m.kernel_mut().trap_segment_len(boot, entry).unwrap()
        };
        let boot = m.kernel_thread();
        let bytes = m
            .kernel_mut()
            .trap_segment_read(boot, entry, 0, len)
            .unwrap();
        (bytes, report)
    }

    fn cfg(seed: u64, quantum_us: u64) -> SchedConfig {
        SchedConfig::new()
            .seed(seed)
            .quantum(SimDuration::from_micros(quantum_us))
    }

    #[test]
    fn round_robin_interleaves_and_completes() {
        let (bytes, report) = interleaving(cfg(7, 100));
        assert_eq!(report.stop, StopReason::AllComplete);
        assert_eq!(report.stats.quanta, 9);
        assert_eq!(report.stats.completed, 3);
        assert_eq!(report.remaining, 0);
        assert!(report.elapsed > SimDuration::ZERO);
        // Nine writes, three per writer, strictly interleaved: the first
        // three bytes are the three distinct tags (the shard rotation takes
        // one quantum per non-empty shard, never run-to-completion).
        assert_eq!(bytes.len(), 9);
        let mut first: Vec<u8> = bytes[..3].to_vec();
        first.sort_unstable();
        assert_eq!(first, vec![b'a', b'b', b'c']);
    }

    #[test]
    fn same_seed_same_interleaving_different_seed_may_differ() {
        let (a1, _) = interleaving(cfg(7, 100));
        let (a2, _) = interleaving(cfg(7, 100));
        assert_eq!(a1, a2, "scheduling must be deterministic per seed");
        // Across all seeds and shard counts the multiset of work is
        // identical.
        for other in [cfg(8, 100), cfg(7, 100).shards(1), cfg(7, 100).shards(16)] {
            let (b, _) = interleaving(other);
            let mut sa = a1.clone();
            let mut sb = b.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn deprecated_seed_quantum_shim_still_constructs() {
        #[allow(deprecated)]
        let mut sched: Scheduler<Machine> =
            Scheduler::from_seed_quantum(7, SimDuration::from_micros(10));
        assert_eq!(sched.config().seed, 7);
        assert_eq!(sched.config().shards, DEFAULT_SHARDS);
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "t");
        sched.spawn(t, Box::new(|_m, _tid| Step::Done));
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllComplete);
    }

    #[test]
    fn each_run_charges_its_first_context_switch() {
        // Regression: `last_run` must not leak across `run` invocations.
        // A scheduler that remembers the previous run's last thread would
        // skip the context-switch charge on the first quantum of the next
        // run, under-counting switches and under-charging simulated time.
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "spinner");
        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(1, 10));
        sched.spawn(t, Box::new(|_m, _tid| Step::Yield));
        let first = m.run_until(&mut sched, RunLimit::quanta(3));
        assert_eq!(first.stats.quanta, 3);
        assert_eq!(
            first.stats.context_switches, 1,
            "one switch onto the only thread, then none"
        );
        let second = m.run_until(&mut sched, RunLimit::quanta(2));
        assert_eq!(second.stats.quanta, 2);
        assert_eq!(
            second.stats.context_switches, 1,
            "a new run is a fresh occupancy: its first quantum pays the switch"
        );
    }

    #[test]
    fn run_publishes_metrics_to_kernel_registry() {
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "t");
        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(3, 10).shards(4));
        sched.spawn(t, Box::new(|_m, _tid| Step::Done));
        m.run_until(&mut sched, RunLimit::to_completion());
        let set = m.kernel().metrics();
        assert_eq!(set.get("sched.quanta"), Some(1));
        assert_eq!(set.get("sched.completed"), Some(1));
        assert_eq!(set.get("sched.shard_queue_depth.0"), Some(0));
        assert_eq!(set.get("sched.shard_queue_depth.3"), Some(0));
        assert!(set.get("sched.shard_queue_depth.4").is_none());
    }

    #[test]
    fn halted_threads_are_retired_and_blocked_threads_wake_on_alert() {
        let mut m = Machine::boot(MachineConfig::default());
        let root = m.kernel().root_container();
        let sleeper = spawn_thread(&mut m, "sleeper");
        let waker = spawn_thread(&mut m, "waker");
        // Give both threads an address space so alerts can be delivered.
        let boot = m.kernel_thread();
        let aspace = m
            .kernel_mut()
            .trap_as_create(boot, root, Label::unrestricted(), "as")
            .unwrap();
        let ae = ContainerEntry::new(root, aspace);
        m.kernel_mut().trap_self_set_as(sleeper, ae).unwrap();

        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(1, 10));
        let woke = std::rc::Rc::new(std::cell::Cell::new(false));
        let woke2 = woke.clone();
        sched.spawn(
            sleeper,
            Box::new(move |m: &mut Machine, tid| {
                if m.kernel_mut().trap_self_take_alert(tid).unwrap().is_some() {
                    woke2.set(true);
                    Step::Done
                } else {
                    Step::Block
                }
            }),
        );
        let mut waker_steps = 0u32;
        sched.spawn(
            waker,
            Box::new(move |m: &mut Machine, tid| {
                waker_steps += 1;
                match waker_steps {
                    // Let the sleeper run (and park) first: the rotation
                    // guarantees every runnable thread steps once per
                    // revolution, so by our second quantum it has blocked.
                    1 => Step::Yield,
                    2 => {
                        m.kernel_mut()
                            .trap_thread_alert(tid, ContainerEntry::new(root, sleeper), 9)
                            .unwrap();
                        Step::Yield
                    }
                    _ => Step::Done,
                }
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllComplete);
        assert!(woke.get(), "the blocked sleeper must wake on the alert");
        assert!(sched.stats().alert_wakeups >= 1);
    }

    #[test]
    fn all_blocked_is_detected_not_spun() {
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "forever");
        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(1, 10));
        sched.spawn(t, Box::new(|_m, _tid| Step::Block));
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllBlocked);
        assert_eq!(report.remaining, 1);
        assert_eq!(report.stats.parked_high_water, 1);
    }

    #[test]
    fn consumed_alert_does_not_rewake_a_reblocked_thread() {
        // A thread that takes its alert and blocks again must park for
        // good: the alert's completion-queue notification is consumed with
        // the alert, so the stale completion cannot re-wake it every pass
        // (which would spin the run loop instead of reaching AllBlocked).
        let mut m = Machine::boot(MachineConfig::default());
        let root = m.kernel().root_container();
        let sleeper = spawn_thread(&mut m, "sleeper");
        let waker = spawn_thread(&mut m, "waker");
        let boot = m.kernel_thread();
        let aspace = m
            .kernel_mut()
            .trap_as_create(boot, root, Label::unrestricted(), "as")
            .unwrap();
        m.kernel_mut()
            .trap_self_set_as(sleeper, ContainerEntry::new(root, aspace))
            .unwrap();

        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(5, 10));
        let mut taken = 0u32;
        sched.spawn(
            sleeper,
            Box::new(move |m: &mut Machine, tid| {
                // Deliberately no reap_completions: the legacy take_alert
                // convention must not leave a wake-causing stale entry.
                if m.kernel_mut().trap_self_take_alert(tid).unwrap().is_some() {
                    taken += 1;
                }
                if taken >= 2 {
                    Step::Done
                } else {
                    // Wait for the second alert, which never comes.
                    Step::Block
                }
            }),
        );
        let mut sent = false;
        sched.spawn(
            waker,
            Box::new(move |m: &mut Machine, tid| {
                if !sent {
                    sent = true;
                    m.kernel_mut()
                        .trap_thread_alert(tid, ContainerEntry::new(root, sleeper), 1)
                        .unwrap();
                }
                Step::Done
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::quanta(64));
        assert_eq!(
            report.stop,
            StopReason::AllBlocked,
            "a spinning re-wake would exhaust the quantum budget instead"
        );
        assert!(
            report.stats.quanta <= 4,
            "got {} quanta",
            report.stats.quanta
        );
        assert_eq!(report.remaining, 1);
    }

    #[test]
    fn blocked_thread_consumes_zero_quanta_until_woken() {
        // Regression test for the alert busy-poll: a thread that blocks on
        // an empty completion queue must not be stepped (or charged) again
        // until the alert wakes it — exactly two quanta total, no matter
        // how long the waker keeps the CPU busy in between.
        let mut m = Machine::boot(MachineConfig::default());
        let root = m.kernel().root_container();
        let sleeper = spawn_thread(&mut m, "sleeper");
        let waker = spawn_thread(&mut m, "waker");
        let boot = m.kernel_thread();
        let aspace = m
            .kernel_mut()
            .trap_as_create(boot, root, Label::unrestricted(), "as")
            .unwrap();
        m.kernel_mut()
            .trap_self_set_as(sleeper, ContainerEntry::new(root, aspace))
            .unwrap();

        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(9, 10));
        let sleeper_steps = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let steps = sleeper_steps.clone();
        sched.spawn(
            sleeper,
            Box::new(move |m: &mut Machine, tid| {
                steps.set(steps.get() + 1);
                let completions = m.kernel_mut().reap_completions(tid);
                if completions
                    .iter()
                    .any(|c| matches!(c.kind, crate::abi::CompletionKind::AlertPending { .. }))
                {
                    let alert = m.kernel_mut().trap_self_take_alert(tid).unwrap();
                    assert_eq!(alert.map(|a| a.code), Some(44));
                    Step::Done
                } else {
                    Step::Block
                }
            }),
        );
        const BUSY_QUANTA: u64 = 25;
        let mut spins = 0u64;
        sched.spawn(
            waker,
            Box::new(move |m: &mut Machine, tid| {
                spins += 1;
                if spins < BUSY_QUANTA {
                    Step::Yield
                } else {
                    m.kernel_mut()
                        .trap_thread_alert(tid, ContainerEntry::new(root, sleeper), 44)
                        .unwrap();
                    Step::Done
                }
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllComplete);
        assert_eq!(sleeper_steps.get(), 2, "one step to block, one to wake");
        assert_eq!(
            report.stats.quanta,
            BUSY_QUANTA + 2,
            "the parked sleeper must be charged no quanta"
        );
        assert_eq!(sched.stats().alert_wakeups, 1);
        // The wake side is O(events): the sleeper was examined at most
        // once per event (its own park mark, then the alert), never per
        // pass of the waker's 25 busy quanta.
        assert!(
            sched.stats().wake_examined <= 3,
            "wake_examined = {}",
            sched.stats().wake_examined
        );
    }

    #[test]
    fn submit_then_block_wakes_on_completion() {
        // The async pattern: a program submits a batch during its quantum,
        // blocks, and is woken by the completions on its queue (not by an
        // alert).
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "submitter");
        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(2, 10));
        let mut submitted = false;
        sched.spawn(
            t,
            Box::new(move |m: &mut Machine, tid| {
                if !submitted {
                    submitted = true;
                    let mut sq = crate::abi::SubmissionQueue::new();
                    sq.call(crate::dispatch::Syscall::CreateCategory);
                    sq.call(crate::dispatch::Syscall::SelfGetLabel);
                    assert_eq!(m.kernel_mut().submit(tid, &mut sq), 2);
                    Step::Block
                } else {
                    let done = m.kernel_mut().reap_completions(tid);
                    assert_eq!(done.len(), 2);
                    assert!(done
                        .iter()
                        .all(|c| matches!(&c.kind, crate::abi::CompletionKind::Call(Ok(_)))));
                    Step::Done
                }
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllComplete);
        assert_eq!(sched.stats().completion_wakeups, 1);
        assert_eq!(sched.stats().alert_wakeups, 0);
    }

    #[test]
    fn quantum_budget_is_respected() {
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "spinner");
        let mut sched: Scheduler<Machine> = Scheduler::new(cfg(1, 10));
        sched.spawn(t, Box::new(|_m, _tid| Step::Yield));
        let report = m.run_until(&mut sched, RunLimit::quanta(5));
        assert_eq!(report.stop, StopReason::QuantaExhausted);
        assert_eq!(report.stats.quanta, 5);
        assert_eq!(report.remaining, 1);
    }
}
