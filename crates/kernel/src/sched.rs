//! A deterministic round-robin scheduler over kernel threads.
//!
//! The paper's kernel schedules threads; this reproduction historically let
//! library code drive every thread to completion as nested function calls,
//! so `ThreadState::Runnable` existed with nothing that ever *ran* a
//! thread.  This module closes that gap for the simulated machine:
//!
//! * every scheduled thread is represented by a **program** — a state
//!   machine stepped one quantum at a time, issuing its kernel work through
//!   [`Kernel::dispatch`](crate::kernel::Kernel) on its own thread ID;
//! * the [`Scheduler`] interleaves programs round-robin, charging each
//!   quantum and context switch to the [`SimClock`], honoring
//!   `sys_self_halt` (a halted thread is retired) and alerts (a blocked
//!   thread with pending alerts is woken);
//! * scheduling is **deterministic**: the run queue order is a pure
//!   function of admission order and the scheduler seed (threads admitted
//!   in the same batch are tie-broken by a seeded shuffle), so the same
//!   seed replays the identical interleaving — and, with tracing enabled,
//!   the identical syscall audit stream.
//!
//! Programs run against a caller-supplied context type implementing
//! [`SchedContext`] (the kernel itself, a whole [`Machine`], or a library
//! environment wrapping one), which is how untrusted user-level libraries
//! — the Unix environment, the auth services — are multiprogrammed without
//! the kernel crate knowing about them.

use crate::bodies::ThreadState;
use crate::kernel::Kernel;
use crate::machine::Machine;
use crate::object::ObjectId;
use histar_sim::{SimDuration, SimRng};
use std::collections::{BTreeMap, VecDeque};

/// What a program reports at the end of one quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The quantum is used up; schedule me again later.
    Yield,
    /// Block until an alert arrives for this thread.
    Block,
    /// The program is finished; halt the thread and retire it.
    Done,
}

/// A scheduled thread's user-level program: called once per quantum with
/// the shared context and the thread's own ID.
pub type Program<Ctx> = Box<dyn FnMut(&mut Ctx, ObjectId) -> Step>;

/// Anything a scheduler can run programs against.  The only requirement is
/// reaching the kernel (for thread states, wakeups and cost accounting).
pub trait SchedContext {
    /// The kernel the scheduled threads live in.
    fn sched_kernel(&mut self) -> &mut Kernel;
}

impl SchedContext for Kernel {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self
    }
}

impl SchedContext for Machine {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self.kernel_mut()
    }
}

/// Bounds on one [`Scheduler::run`] invocation.
#[derive(Clone, Copy, Debug)]
pub struct RunLimit {
    /// Maximum quanta to execute before returning.
    pub max_quanta: u64,
    /// Stop once the simulated clock passes this time, if set.
    pub deadline: Option<SimDuration>,
}

impl RunLimit {
    /// Run at most `n` quanta.
    pub fn quanta(n: u64) -> RunLimit {
        RunLimit {
            max_quanta: n,
            deadline: None,
        }
    }

    /// Run until every program completes or blocks forever (with a large
    /// safety bound so a buggy program cannot spin the host).
    pub fn to_completion() -> RunLimit {
        RunLimit {
            max_quanta: 10_000_000,
            deadline: None,
        }
    }

    /// Additionally stop at a simulated-time deadline.
    pub fn until(mut self, deadline: SimDuration) -> RunLimit {
        self.deadline = Some(deadline);
        self
    }
}

/// Why [`Scheduler::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every scheduled program has completed (or its thread halted).
    AllComplete,
    /// The quantum budget ran out.
    QuantaExhausted,
    /// The simulated-time deadline passed.
    DeadlinePassed,
    /// Only blocked threads remain and none has a pending alert.
    AllBlocked,
}

/// Counters describing one or more [`Scheduler::run`] invocations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Quanta executed (program steps).
    pub quanta: u64,
    /// Context switches performed (one per quantum that changed threads).
    pub context_switches: u64,
    /// Programs retired (completed or found halted).
    pub completed: u64,
    /// Blocked threads woken because an alert was pending.
    pub alert_wakeups: u64,
    /// Blocked threads woken because a completion landed on their
    /// completion queue.
    pub completion_wakeups: u64,
}

impl histar_obs::MetricSource for SchedStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("sched.quanta", self.quanta);
        set.counter("sched.context_switches", self.context_switches);
        set.counter("sched.completed", self.completed);
        set.counter("sched.alert_wakeups", self.alert_wakeups);
        set.counter("sched.completion_wakeups", self.completion_wakeups);
    }
}

/// The result of one [`Scheduler::run`] invocation.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleReport {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Quanta executed during this run.
    pub quanta: u64,
    /// Context switches during this run.
    pub context_switches: u64,
    /// Programs retired during this run.
    pub completed: u64,
    /// Programs still scheduled (runnable or blocked) at return.
    pub remaining: usize,
    /// Simulated time consumed by this run.
    pub elapsed: SimDuration,
}

/// A deterministic round-robin scheduler.
///
/// `Ctx` is the shared world the programs mutate — see [`SchedContext`].
pub struct Scheduler<Ctx> {
    quantum: SimDuration,
    rng: SimRng,
    queue: VecDeque<ObjectId>,
    /// Threads parked off the run queue until a completion or alert
    /// arrives, keyed to their park sequence number.  Blocked threads
    /// consume zero quanta: they are not rotated through the run queue,
    /// and — via the kernel's sched-dirty list — only threads whose wake
    /// conditions actually changed are re-examined, so a wake pass costs
    /// O(events), not O(parked threads).  Eligible wakes are applied in
    /// park order, keeping the interleaving a pure function of the seed.
    waiting: BTreeMap<ObjectId, u64>,
    /// Monotonic counter stamping each park, for deterministic wake order.
    park_seq: u64,
    pending: Vec<ObjectId>,
    programs: BTreeMap<ObjectId, Program<Ctx>>,
    last_run: Option<ObjectId>,
    stats: SchedStats,
}

impl<Ctx: SchedContext> Scheduler<Ctx> {
    /// Creates a scheduler.  `seed` fixes every tie-break; `quantum` is the
    /// CPU time charged per program step.
    pub fn new(seed: u64, quantum: SimDuration) -> Scheduler<Ctx> {
        Scheduler {
            quantum,
            rng: SimRng::new(seed ^ 0x5ced_5ced),
            queue: VecDeque::new(),
            waiting: BTreeMap::new(),
            park_seq: 0,
            pending: Vec::new(),
            programs: BTreeMap::new(),
            last_run: None,
            stats: SchedStats::default(),
        }
    }

    /// Schedules `program` to run as thread `tid`.  Threads spawned between
    /// two `run` calls form one admission batch whose queue order is
    /// decided by the scheduler seed.
    pub fn spawn(&mut self, tid: ObjectId, program: Program<Ctx>) {
        self.programs.insert(tid, program);
        self.pending.push(tid);
    }

    /// Number of threads still scheduled (runnable or blocked).
    pub fn scheduled(&self) -> usize {
        self.programs.len()
    }

    /// Aggregate counters across all runs.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// The configured quantum.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// Admits the pending batch: seeded-shuffle, then append.  This is the
    /// scheduler's only use of randomness, and it is fully determined by
    /// the seed and the spawn order.
    fn admit_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.pending);
        self.rng.shuffle(&mut batch);
        self.queue.extend(batch);
    }

    /// Parks a thread in the wait set and marks it sched-dirty so the next
    /// wake pass re-checks it once: a completion or alert that landed
    /// during the thread's final quantum (submit-then-block) must not be
    /// lost just because the event preceded the park.
    fn park(&mut self, ctx: &mut Ctx, tid: ObjectId) {
        self.park_seq += 1;
        self.waiting.insert(tid, self.park_seq);
        ctx.sched_kernel().sched_mark_dirty(tid);
    }

    /// Re-examines exactly the parked threads whose wake conditions may
    /// have changed — the kernel's sched-dirty list: a pending alert, a
    /// completion on their completion queue, or an external `sched_wake` —
    /// and moves the eligible ones (in park order) back to the run queue.
    /// Retires threads that halted or died while parked.  Threads with no
    /// event stay parked untouched, so 10⁴ idle clients cost nothing here.
    fn wake_waiters(&mut self, ctx: &mut Ctx) {
        let dirty = ctx.sched_kernel().take_sched_dirty();
        if dirty.is_empty() {
            return;
        }
        let mut hits: Vec<(u64, ObjectId)> = dirty
            .into_iter()
            .filter_map(|tid| self.waiting.get(&tid).map(|&seq| (seq, tid)))
            .collect();
        hits.sort_unstable();
        for (_, tid) in hits {
            let kernel = ctx.sched_kernel();
            match kernel.thread_state(tid) {
                Err(_) | Ok(ThreadState::Halted) => {
                    self.waiting.remove(&tid);
                    self.programs.remove(&tid);
                    self.stats.completed += 1;
                }
                Ok(ThreadState::Runnable) => {
                    // Woken externally (explicit sched_wake).
                    self.waiting.remove(&tid);
                    self.queue.push_back(tid);
                }
                Ok(ThreadState::Blocked) => {
                    if kernel.thread_has_pending_alerts(tid) {
                        let _ = kernel.sched_wake(tid);
                        self.stats.alert_wakeups += 1;
                        self.waiting.remove(&tid);
                        self.queue.push_back(tid);
                    } else if kernel.completion_pending(tid) {
                        let _ = kernel.sched_wake(tid);
                        self.stats.completion_wakeups += 1;
                        self.waiting.remove(&tid);
                        self.queue.push_back(tid);
                    }
                    // Otherwise the event was spurious: stay parked.
                }
            }
        }
    }

    /// Runs scheduled programs round-robin until `limit` is reached, every
    /// program completes, or only hopelessly blocked threads remain.
    ///
    /// Blocked threads live in a wait set, not the run queue: they are
    /// charged no quanta and never stepped until a completion or alert
    /// wakes them (this replaced the old busy rotation that cycled blocked
    /// threads through the queue every pass).
    pub fn run(&mut self, ctx: &mut Ctx, limit: RunLimit) -> ScheduleReport {
        self.admit_pending();
        let start = ctx.sched_kernel().now();
        let before = self.stats;
        let stop = loop {
            self.wake_waiters(ctx);
            if self.queue.is_empty() {
                break if self.waiting.is_empty() {
                    StopReason::AllComplete
                } else {
                    StopReason::AllBlocked
                };
            }
            if self.stats.quanta - before.quanta >= limit.max_quanta {
                break StopReason::QuantaExhausted;
            }
            if let Some(deadline) = limit.deadline {
                if ctx.sched_kernel().now() >= deadline {
                    break StopReason::DeadlinePassed;
                }
            }
            let tid = self.queue.pop_front().expect("queue checked non-empty");
            match ctx.sched_kernel().thread_state(tid) {
                // A halted (or deallocated) thread is retired without
                // running: self_halt and thread teardown are honored here.
                Err(_) | Ok(ThreadState::Halted) => {
                    self.programs.remove(&tid);
                    self.stats.completed += 1;
                    continue;
                }
                Ok(ThreadState::Blocked) => {
                    // Blocked outside the scheduler's own Step::Block path
                    // (e.g. a direct sched_block): park it.
                    self.park(ctx, tid);
                    continue;
                }
                Ok(ThreadState::Runnable) => {}
            }

            // Charge the switch onto this thread and its timeslice.
            let (recorder, quantum_start) = {
                let kernel = ctx.sched_kernel();
                let quantum_start = kernel.now().as_nanos();
                if self.last_run != Some(tid) {
                    let _ = kernel.sched_context_switch(tid);
                    self.stats.context_switches += 1;
                    kernel.recorder().record(histar_obs::Span {
                        cat: "sched",
                        name: "context_switch",
                        start: quantum_start,
                        end: kernel.now().as_nanos(),
                        tid: tid.raw(),
                        seq: self.stats.context_switches,
                    });
                }
                kernel.sched_charge(self.quantum);
                (kernel.recorder().clone(), quantum_start)
            };
            self.last_run = Some(tid);
            self.stats.quanta += 1;

            let mut program = self
                .programs
                .remove(&tid)
                .expect("every queued thread has a program");
            let step = program(ctx, tid);
            recorder.record(histar_obs::Span {
                cat: "sched",
                name: "quantum",
                start: quantum_start,
                end: ctx.sched_kernel().now().as_nanos(),
                tid: tid.raw(),
                seq: self.stats.quanta,
            });
            match step {
                Step::Yield => {
                    self.programs.insert(tid, program);
                    self.queue.push_back(tid);
                }
                Step::Block => {
                    let _ = ctx.sched_kernel().sched_block(tid);
                    self.programs.insert(tid, program);
                    self.park(ctx, tid);
                }
                Step::Done => {
                    // Halt through the trap boundary so the audit trace
                    // records the thread's exit like any other syscall.
                    let _ = ctx.sched_kernel().trap_self_halt(tid);
                    self.stats.completed += 1;
                }
            }
            // Admit any threads the program spawned during its quantum.
            self.admit_pending();
        };
        let after = self.stats;
        ScheduleReport {
            stop,
            quanta: after.quanta - before.quanta,
            context_switches: after.context_switches - before.context_switches,
            completed: after.completed - before.completed,
            remaining: self.programs.len(),
            elapsed: ctx.sched_kernel().now() - start,
        }
    }
}

impl Machine {
    /// Drives a scheduler over this machine until `limit` is reached or all
    /// programs complete — the machine-level "run the CPU" loop.
    pub fn run_until(&mut self, sched: &mut Scheduler<Machine>, limit: RunLimit) -> ScheduleReport {
        sched.run(self, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::object::ContainerEntry;
    use histar_label::Label;

    fn spawn_thread(m: &mut Machine, name: &str) -> ObjectId {
        let boot = m.kernel_thread();
        let root = m.kernel().root_container();
        m.kernel_mut()
            .trap_thread_create(
                boot,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                name,
            )
            .unwrap()
    }

    /// A program that appends `tag` to a shared segment `n` times, one
    /// write per quantum.
    fn writer(entry: ContainerEntry, tag: u8, n: usize) -> Program<Machine> {
        let mut remaining = n;
        Box::new(move |m: &mut Machine, tid: ObjectId| {
            let len = m.kernel_mut().trap_segment_len(tid, entry).unwrap();
            m.kernel_mut()
                .trap_segment_write(tid, entry, len, &[tag])
                .unwrap();
            remaining -= 1;
            if remaining == 0 {
                Step::Done
            } else {
                Step::Yield
            }
        })
    }

    fn interleaving(seed: u64) -> (Vec<u8>, ScheduleReport) {
        let mut m = Machine::boot(MachineConfig::default());
        let boot = m.kernel_thread();
        let root = m.kernel().root_container();
        let seg = m
            .kernel_mut()
            .trap_segment_create(boot, root, Label::unrestricted(), 0, "log")
            .unwrap();
        let entry = ContainerEntry::new(root, seg);
        let mut sched: Scheduler<Machine> = Scheduler::new(seed, SimDuration::from_micros(100));
        for (i, tag) in [b'a', b'b', b'c'].into_iter().enumerate() {
            let tid = spawn_thread(&mut m, &format!("w{i}"));
            sched.spawn(tid, writer(entry, tag, 3));
        }
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        let len = {
            let boot = m.kernel_thread();
            m.kernel_mut().trap_segment_len(boot, entry).unwrap()
        };
        let boot = m.kernel_thread();
        let bytes = m
            .kernel_mut()
            .trap_segment_read(boot, entry, 0, len)
            .unwrap();
        (bytes, report)
    }

    #[test]
    fn round_robin_interleaves_and_completes() {
        let (bytes, report) = interleaving(7);
        assert_eq!(report.stop, StopReason::AllComplete);
        assert_eq!(report.quanta, 9);
        assert_eq!(report.completed, 3);
        assert_eq!(report.remaining, 0);
        assert!(report.elapsed > SimDuration::ZERO);
        // Nine writes, three per writer, strictly interleaved: the first
        // three bytes are the three distinct tags (round-robin, not
        // run-to-completion).
        assert_eq!(bytes.len(), 9);
        let mut first: Vec<u8> = bytes[..3].to_vec();
        first.sort_unstable();
        assert_eq!(first, vec![b'a', b'b', b'c']);
    }

    #[test]
    fn same_seed_same_interleaving_different_seed_may_differ() {
        let (a1, _) = interleaving(7);
        let (a2, _) = interleaving(7);
        assert_eq!(a1, a2, "scheduling must be deterministic per seed");
        // Across all seeds the multiset of work is identical.
        let (b, _) = interleaving(8);
        let mut sa = a1.clone();
        let mut sb = b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
    }

    #[test]
    fn halted_threads_are_retired_and_blocked_threads_wake_on_alert() {
        let mut m = Machine::boot(MachineConfig::default());
        let root = m.kernel().root_container();
        let sleeper = spawn_thread(&mut m, "sleeper");
        let waker = spawn_thread(&mut m, "waker");
        // Give both threads an address space so alerts can be delivered.
        let boot = m.kernel_thread();
        let aspace = m
            .kernel_mut()
            .trap_as_create(boot, root, Label::unrestricted(), "as")
            .unwrap();
        let ae = ContainerEntry::new(root, aspace);
        m.kernel_mut().trap_self_set_as(sleeper, ae).unwrap();

        let mut sched: Scheduler<Machine> = Scheduler::new(1, SimDuration::from_micros(10));
        let woke = std::rc::Rc::new(std::cell::Cell::new(false));
        let woke2 = woke.clone();
        sched.spawn(
            sleeper,
            Box::new(move |m: &mut Machine, tid| {
                if m.kernel_mut().trap_self_take_alert(tid).unwrap().is_some() {
                    woke2.set(true);
                    Step::Done
                } else {
                    Step::Block
                }
            }),
        );
        let mut sent = false;
        sched.spawn(
            waker,
            Box::new(move |m: &mut Machine, tid| {
                if !sent {
                    sent = true;
                    m.kernel_mut()
                        .trap_thread_alert(tid, ContainerEntry::new(root, sleeper), 9)
                        .unwrap();
                    Step::Yield
                } else {
                    Step::Done
                }
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllComplete);
        assert!(woke.get(), "the blocked sleeper must wake on the alert");
        assert!(sched.stats().alert_wakeups >= 1);
    }

    #[test]
    fn all_blocked_is_detected_not_spun() {
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "forever");
        let mut sched: Scheduler<Machine> = Scheduler::new(1, SimDuration::from_micros(10));
        sched.spawn(t, Box::new(|_m, _tid| Step::Block));
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllBlocked);
        assert_eq!(report.remaining, 1);
    }

    #[test]
    fn consumed_alert_does_not_rewake_a_reblocked_thread() {
        // A thread that takes its alert and blocks again must park for
        // good: the alert's completion-queue notification is consumed with
        // the alert, so the stale completion cannot re-wake it every pass
        // (which would spin the run loop instead of reaching AllBlocked).
        let mut m = Machine::boot(MachineConfig::default());
        let root = m.kernel().root_container();
        let sleeper = spawn_thread(&mut m, "sleeper");
        let waker = spawn_thread(&mut m, "waker");
        let boot = m.kernel_thread();
        let aspace = m
            .kernel_mut()
            .trap_as_create(boot, root, Label::unrestricted(), "as")
            .unwrap();
        m.kernel_mut()
            .trap_self_set_as(sleeper, ContainerEntry::new(root, aspace))
            .unwrap();

        let mut sched: Scheduler<Machine> = Scheduler::new(5, SimDuration::from_micros(10));
        let mut taken = 0u32;
        sched.spawn(
            sleeper,
            Box::new(move |m: &mut Machine, tid| {
                // Deliberately no reap_completions: the legacy take_alert
                // convention must not leave a wake-causing stale entry.
                if m.kernel_mut().trap_self_take_alert(tid).unwrap().is_some() {
                    taken += 1;
                }
                if taken >= 2 {
                    Step::Done
                } else {
                    // Wait for the second alert, which never comes.
                    Step::Block
                }
            }),
        );
        let mut sent = false;
        sched.spawn(
            waker,
            Box::new(move |m: &mut Machine, tid| {
                if !sent {
                    sent = true;
                    m.kernel_mut()
                        .trap_thread_alert(tid, ContainerEntry::new(root, sleeper), 1)
                        .unwrap();
                }
                Step::Done
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::quanta(64));
        assert_eq!(
            report.stop,
            StopReason::AllBlocked,
            "a spinning re-wake would exhaust the quantum budget instead"
        );
        assert!(report.quanta <= 4, "got {} quanta", report.quanta);
        assert_eq!(report.remaining, 1);
    }

    #[test]
    fn blocked_thread_consumes_zero_quanta_until_woken() {
        // Regression test for the alert busy-poll: a thread that blocks on
        // an empty completion queue must not be stepped (or charged) again
        // until the alert wakes it — exactly two quanta total, no matter
        // how long the waker keeps the CPU busy in between.
        let mut m = Machine::boot(MachineConfig::default());
        let root = m.kernel().root_container();
        let sleeper = spawn_thread(&mut m, "sleeper");
        let waker = spawn_thread(&mut m, "waker");
        let boot = m.kernel_thread();
        let aspace = m
            .kernel_mut()
            .trap_as_create(boot, root, Label::unrestricted(), "as")
            .unwrap();
        m.kernel_mut()
            .trap_self_set_as(sleeper, ContainerEntry::new(root, aspace))
            .unwrap();

        let mut sched: Scheduler<Machine> = Scheduler::new(9, SimDuration::from_micros(10));
        let sleeper_steps = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let steps = sleeper_steps.clone();
        sched.spawn(
            sleeper,
            Box::new(move |m: &mut Machine, tid| {
                steps.set(steps.get() + 1);
                let completions = m.kernel_mut().reap_completions(tid);
                if completions
                    .iter()
                    .any(|c| matches!(c.kind, crate::abi::CompletionKind::AlertPending { .. }))
                {
                    let alert = m.kernel_mut().trap_self_take_alert(tid).unwrap();
                    assert_eq!(alert.map(|a| a.code), Some(44));
                    Step::Done
                } else {
                    Step::Block
                }
            }),
        );
        const BUSY_QUANTA: u64 = 25;
        let mut spins = 0u64;
        sched.spawn(
            waker,
            Box::new(move |m: &mut Machine, tid| {
                spins += 1;
                if spins < BUSY_QUANTA {
                    Step::Yield
                } else {
                    m.kernel_mut()
                        .trap_thread_alert(tid, ContainerEntry::new(root, sleeper), 44)
                        .unwrap();
                    Step::Done
                }
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllComplete);
        assert_eq!(sleeper_steps.get(), 2, "one step to block, one to wake");
        assert_eq!(
            report.quanta,
            BUSY_QUANTA + 2,
            "the parked sleeper must be charged no quanta"
        );
        assert_eq!(sched.stats().alert_wakeups, 1);
    }

    #[test]
    fn submit_then_block_wakes_on_completion() {
        // The async pattern: a program submits a batch during its quantum,
        // blocks, and is woken by the completions on its queue (not by an
        // alert).
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "submitter");
        let mut sched: Scheduler<Machine> = Scheduler::new(2, SimDuration::from_micros(10));
        let mut submitted = false;
        sched.spawn(
            t,
            Box::new(move |m: &mut Machine, tid| {
                if !submitted {
                    submitted = true;
                    let mut sq = crate::abi::SubmissionQueue::new();
                    sq.call(crate::dispatch::Syscall::CreateCategory);
                    sq.call(crate::dispatch::Syscall::SelfGetLabel);
                    assert_eq!(m.kernel_mut().submit(tid, &mut sq), 2);
                    Step::Block
                } else {
                    let done = m.kernel_mut().reap_completions(tid);
                    assert_eq!(done.len(), 2);
                    assert!(done
                        .iter()
                        .all(|c| matches!(&c.kind, crate::abi::CompletionKind::Call(Ok(_)))));
                    Step::Done
                }
            }),
        );
        let report = m.run_until(&mut sched, RunLimit::to_completion());
        assert_eq!(report.stop, StopReason::AllComplete);
        assert_eq!(sched.stats().completion_wakeups, 1);
        assert_eq!(sched.stats().alert_wakeups, 0);
    }

    #[test]
    fn quantum_budget_is_respected() {
        let mut m = Machine::boot(MachineConfig::default());
        let t = spawn_thread(&mut m, "spinner");
        let mut sched: Scheduler<Machine> = Scheduler::new(1, SimDuration::from_micros(10));
        sched.spawn(t, Box::new(|_m, _tid| Step::Yield));
        let report = m.run_until(&mut sched, RunLimit::quanta(5));
        assert_eq!(report.stop, StopReason::QuantaExhausted);
        assert_eq!(report.quanta, 5);
        assert_eq!(report.remaining, 1);
    }
}
