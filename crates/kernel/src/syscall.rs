//! System-call errors and statistics.
//!
//! HiStar's kernel interface is deliberately narrow; every call either
//! succeeds or fails with one of the errors below.  The kernel also counts
//! system calls, label checks and page faults so the benchmark harness can
//! report the structural numbers the paper quotes (e.g. 317 system calls per
//! fork/exec versus 127 per spawn).

use crate::object::{ObjectId, ObjectType};
use histar_label::LabelError;

/// An error returned by a HiStar system call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallError {
    /// The named object does not exist (or has been deallocated).
    NoSuchObject(ObjectId),
    /// The object exists but has a different type than the call requires.
    WrongType {
        /// The object's actual type.
        found: ObjectType,
        /// The type the call expected.
        expected: ObjectType,
    },
    /// The container entry's container does not hold a link to the object.
    NotInContainer {
        /// The container named by the entry.
        container: ObjectId,
        /// The object named by the entry.
        object: ObjectId,
    },
    /// A label check failed: the calling thread may not observe the object.
    CannotObserve(ObjectId),
    /// A label check failed: the calling thread may not modify the object.
    CannotModify(ObjectId),
    /// A label rule was violated (allocation, clearance or gate rules).
    Label(LabelError),
    /// The object's label may not contain `⋆` (only threads and gates may).
    OwnershipNotAllowed(ObjectType),
    /// The container (or an ancestor) forbids creating this object type.
    TypeForbidden(ObjectType),
    /// The container does not have enough spare quota.
    QuotaExceeded {
        /// The container charged for the allocation.
        container: ObjectId,
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// The object's quota is fixed and cannot be changed.
    QuotaFixed(ObjectId),
    /// A quota adjustment would make usage exceed the object's own quota,
    /// or reduce a quota below current usage.
    QuotaUnderflow(ObjectId),
    /// The object is immutable.
    Immutable(ObjectId),
    /// The object must have its quota fixed before being hard-linked again.
    QuotaNotFixed(ObjectId),
    /// The gate's clearance does not admit the calling thread.
    GateClearance(ObjectId),
    /// The verify label supplied at gate invocation is not below the
    /// thread's label.
    VerifyLabel,
    /// Access to memory that no mapping covers, or with the wrong
    /// permission; the user-level page-fault handler decides what happens.
    PageFault {
        /// Faulting virtual address.
        va: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// The thread is halted and cannot perform system calls.
    ThreadHalted(ObjectId),
    /// The calling thread does not own (`⋆`) the category the call needs
    /// ownership of (e.g. binding a category to its global exporter name).
    NotCategoryOwner(histar_label::Category),
    /// The root container cannot be unreferenced or given a finite quota.
    RootContainer,
    /// The call is malformed (bad argument, out-of-range offset, ...).
    InvalidArgument(&'static str),
    /// A handle-encoded argument names no live handle in the calling
    /// thread's handle table (never installed, closed, or revoked when the
    /// link it was resolved through was unreferenced).
    BadHandle(u32),
    /// A persist-record call reached a kernel with no single-level store
    /// attached (standalone kernels used in pure label tests).
    NoStore,
    /// The named persist record does not exist in the store.
    NoSuchRecord(u64),
    /// A label check failed: the calling thread may not observe the
    /// persist record.
    CannotObserveRecord(u64),
    /// A label check failed: the calling thread may not modify the
    /// persist record.
    CannotModifyRecord(u64),
    /// A persist record's on-store framing (label prefix) failed to
    /// decode.
    CorruptRecord(u64),
}

impl From<LabelError> for SyscallError {
    fn from(e: LabelError) -> SyscallError {
        SyscallError::Label(e)
    }
}

impl core::fmt::Display for SyscallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SyscallError::NoSuchObject(id) => write!(f, "no such object: {id}"),
            SyscallError::WrongType { found, expected } => {
                write!(
                    f,
                    "wrong object type: found {}, expected {}",
                    found.name(),
                    expected.name()
                )
            }
            SyscallError::NotInContainer { container, object } => {
                write!(f, "container {container} has no link to {object}")
            }
            SyscallError::CannotObserve(id) => write!(f, "label check: cannot observe {id}"),
            SyscallError::CannotModify(id) => write!(f, "label check: cannot modify {id}"),
            SyscallError::Label(e) => write!(f, "label rule violated: {e}"),
            SyscallError::OwnershipNotAllowed(t) => {
                write!(f, "{} labels may not contain ownership", t.name())
            }
            SyscallError::TypeForbidden(t) => {
                write!(f, "container forbids creating {} objects", t.name())
            }
            SyscallError::QuotaExceeded {
                container,
                requested,
                available,
            } => write!(
                f,
                "quota exceeded in {container}: requested {requested}, available {available}"
            ),
            SyscallError::QuotaFixed(id) => write!(f, "quota of {id} is fixed"),
            SyscallError::QuotaUnderflow(id) => write!(f, "quota adjustment underflows {id}"),
            SyscallError::Immutable(id) => write!(f, "object {id} is immutable"),
            SyscallError::QuotaNotFixed(id) => {
                write!(f, "object {id} must have a fixed quota before linking")
            }
            SyscallError::GateClearance(id) => {
                write!(f, "gate {id} clearance does not admit the calling thread")
            }
            SyscallError::VerifyLabel => write!(f, "verify label exceeds the thread label"),
            SyscallError::PageFault { va, write } => {
                write!(
                    f,
                    "page fault at {va:#x} ({})",
                    if *write { "write" } else { "read" }
                )
            }
            SyscallError::ThreadHalted(id) => write!(f, "thread {id} is halted"),
            SyscallError::NotCategoryOwner(c) => {
                write!(f, "calling thread does not own category {c}")
            }
            SyscallError::RootContainer => {
                write!(f, "operation not permitted on the root container")
            }
            SyscallError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            SyscallError::BadHandle(h) => write!(f, "stale or unknown handle h{h}"),
            SyscallError::NoStore => write!(f, "no single-level store attached to this kernel"),
            SyscallError::NoSuchRecord(k) => write!(f, "no such persist record: {k:#x}"),
            SyscallError::CannotObserveRecord(k) => {
                write!(f, "label check: cannot observe persist record {k:#x}")
            }
            SyscallError::CannotModifyRecord(k) => {
                write!(f, "label check: cannot modify persist record {k:#x}")
            }
            SyscallError::CorruptRecord(k) => write!(f, "corrupt persist record: {k:#x}"),
        }
    }
}

impl std::error::Error for SyscallError {}

/// Counters describing kernel activity, used by the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyscallStats {
    /// Total system calls executed (including failed ones).
    pub syscalls: u64,
    /// System calls that returned an error.
    pub errors: u64,
    /// Label comparisons performed.
    pub label_checks: u64,
    /// Label comparisons answered by the immutable-label cache.
    pub label_cache_hits: u64,
    /// Page faults handled.
    pub page_faults: u64,
    /// Objects created.
    pub objects_created: u64,
    /// Objects deallocated.
    pub objects_deallocated: u64,
    /// Gate invocations.
    pub gate_invocations: u64,
    /// Context switches (address-space changes).
    pub context_switches: u64,
    /// Context switches that used the cheap `invlpg` path.
    pub invlpg_switches: u64,
}

impl histar_obs::MetricSource for SyscallStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("kernel.syscalls", self.syscalls);
        set.counter("kernel.errors", self.errors);
        set.counter("kernel.label_checks", self.label_checks);
        set.counter("kernel.label_cache_hits", self.label_cache_hits);
        set.counter("kernel.page_faults", self.page_faults);
        set.counter("kernel.objects_created", self.objects_created);
        set.counter("kernel.objects_deallocated", self.objects_deallocated);
        set.counter("kernel.gate_invocations", self.gate_invocations);
        set.counter("kernel.context_switches", self.context_switches);
        set.counter("kernel.invlpg_switches", self.invlpg_switches);
    }
}

impl SyscallStats {
    /// Difference between two snapshots (`self - earlier`), for measuring a
    /// region of execution.
    pub fn since(&self, earlier: &SyscallStats) -> SyscallStats {
        SyscallStats {
            syscalls: self.syscalls - earlier.syscalls,
            errors: self.errors - earlier.errors,
            label_checks: self.label_checks - earlier.label_checks,
            label_cache_hits: self.label_cache_hits - earlier.label_cache_hits,
            page_faults: self.page_faults - earlier.page_faults,
            objects_created: self.objects_created - earlier.objects_created,
            objects_deallocated: self.objects_deallocated - earlier.objects_deallocated,
            gate_invocations: self.gate_invocations - earlier.gate_invocations,
            context_switches: self.context_switches - earlier.context_switches,
            invlpg_switches: self.invlpg_switches - earlier.invlpg_switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SyscallError::QuotaExceeded {
            container: ObjectId::from_raw(3),
            requested: 100,
            available: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("quota"));
        assert!(msg.contains("100"));
        assert!(SyscallError::RootContainer.to_string().contains("root"));
        assert!(SyscallError::PageFault {
            va: 0x1000,
            write: true
        }
        .to_string()
        .contains("write"));
    }

    #[test]
    fn label_error_converts() {
        let e: SyscallError = LabelError::LabelExceedsClearance.into();
        assert!(matches!(e, SyscallError::Label(_)));
    }

    #[test]
    fn stats_difference() {
        let a = SyscallStats {
            syscalls: 10,
            label_checks: 5,
            ..Default::default()
        };
        let b = SyscallStats {
            syscalls: 25,
            label_checks: 11,
            objects_created: 2,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.syscalls, 15);
        assert_eq!(d.label_checks, 6);
        assert_eq!(d.objects_created, 2);
    }
}
