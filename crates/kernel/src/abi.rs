//! The batched user↔kernel ABI: submission/completion queues and typed
//! capability handles.
//!
//! The trap boundary of [`dispatch`](crate::dispatch) charges a full
//! kernel entry/exit per call.  `sched_bench` shows syscall throughput is
//! bounded by exactly that per-trap overhead, so this module models the
//! boundary the way modern kernels do (io_uring): a thread fills a
//! [`SubmissionQueue`] with [`SqEntry`]s and crosses into the kernel
//! *once*; [`Kernel::dispatch_batch`](crate::kernel::Kernel) drains the
//! batch, paying one trap cost for the whole batch while still performing
//! every per-call label check, per-call statistics update and per-call
//! audit-trace append, and pushes one [`Completion`] per entry onto the
//! thread's completion queue.  A thread blocked on an empty completion
//! queue is woken by the scheduler when a completion (or an alert
//! notification) arrives, so waiting costs zero quanta.
//!
//! At the same boundary, raw `⟨container, object⟩` names can be replaced
//! by **capability handles**: small dense [`Handle`]s installed in a
//! per-thread [`HandleTable`] only through a reachability-checked
//! resolution of a [`ContainerEntry`] (the same check every syscall
//! performs — the thread must be able to observe the container and the
//! container must hold a link to the object).  A handle-bearing call can
//! therefore never name an object its thread could not traverse to, and
//! handles are revoked as soon as the link they were installed through is
//! unreferenced.  Handles are per-boot, per-thread kernel state — like
//! io_uring registered files, they are not persisted across snapshots.

use crate::dispatch::{Syscall, SyscallResult};
use crate::object::{ContainerEntry, ObjectId, HANDLE_NAMESPACE};
use crate::syscall::SyscallError;
use std::collections::{BTreeMap, VecDeque};

/// A dense, per-thread capability handle naming one kernel object through
/// the container link it was resolved against.
///
/// Handles are installed only by [`Kernel::handle_open`](crate::Kernel)
/// (which performs the reachability check) and are revoked when the link
/// is unreferenced or the object deallocated; a stale handle fails with
/// [`SyscallError::BadHandle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u32);

impl Handle {
    /// The handle's raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The handle encoded as a [`ContainerEntry`], usable anywhere a
    /// syscall takes one: the entry names the reserved handle namespace as
    /// its container, which no real object can ever occupy, and the
    /// dispatcher substitutes the installed entry (checking liveness)
    /// before the call runs.
    pub fn entry(self) -> ContainerEntry {
        ContainerEntry::new(HANDLE_NAMESPACE, ObjectId::from_raw(self.0 as u64))
    }
}

impl core::fmt::Display for Handle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A per-thread table of installed handles: dense `u32` slots with a free
/// list, so handle values stay small and reuse is cheap.  A live counter
/// keeps emptiness O(1), letting the unref-time revocation sweep skip
/// threads holding no handles, and a reverse `entry → slots` index makes
/// [`HandleTable::find`] O(1) — the fd hot path probes it on every
/// descriptor operation, and a thread holding many open descriptors used
/// to pay a linear slot scan per probe.
#[derive(Clone, Debug, Default)]
pub struct HandleTable {
    slots: Vec<Option<ContainerEntry>>,
    free: Vec<u32>,
    live: usize,
    /// Reverse index: every live slot holding `entry`, in install order.
    /// Invariant: `index[e]` lists exactly the slots `i` with
    /// `slots[i] == Some(e)`, and no empty lists are retained.
    index: BTreeMap<ContainerEntry, Vec<u32>>,
}

impl HandleTable {
    /// Installs an (already reachability-checked) entry, returning its
    /// handle.
    pub fn install(&mut self, entry: ContainerEntry) -> Handle {
        self.live += 1;
        let idx = if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(entry);
            idx
        } else {
            self.slots.push(Some(entry));
            (self.slots.len() - 1) as u32
        };
        self.index.entry(entry).or_default().push(idx);
        Handle(idx)
    }

    /// The entry a handle resolves to, if still installed.
    pub fn resolve(&self, h: Handle) -> Option<ContainerEntry> {
        self.slots.get(h.0 as usize).copied().flatten()
    }

    /// Finds a live handle already installed for exactly this entry, so
    /// hot paths that repeatedly name the same object (the VFS fd path)
    /// can reuse one handle instead of growing the table per operation.
    /// One reverse-index probe, however many descriptors the thread holds.
    pub fn find(&self, entry: ContainerEntry) -> Option<Handle> {
        self.index
            .get(&entry)
            .and_then(|slots| slots.first())
            .map(|&i| Handle(i))
    }

    /// Removes one slot from the reverse index (the slot was just
    /// cleared).
    fn unindex(&mut self, entry: ContainerEntry, idx: u32) {
        if let Some(slots) = self.index.get_mut(&entry) {
            slots.retain(|&i| i != idx);
            if slots.is_empty() {
                self.index.remove(&entry);
            }
        }
    }

    /// Drops one handle.  Returns the entry it named, if any.
    pub fn revoke(&mut self, h: Handle) -> Option<ContainerEntry> {
        let slot = self.slots.get_mut(h.0 as usize)?;
        let old = slot.take();
        if let Some(entry) = old {
            self.free.push(h.0);
            self.live -= 1;
            self.unindex(entry, h.0);
        }
        old
    }

    /// Revokes every handle installed through exactly this container link
    /// (an `obj_unref` severed it).  Returns how many were revoked.
    /// Served entirely from the reverse index: threads without a handle
    /// for this link pay one hash probe.
    pub fn revoke_entry(&mut self, entry: ContainerEntry) -> usize {
        let Some(slots) = self.index.remove(&entry) else {
            return 0;
        };
        let revoked = slots.len();
        for idx in slots {
            self.slots[idx as usize] = None;
            self.free.push(idx);
        }
        self.live -= revoked;
        revoked
    }

    /// Revokes every handle naming `object` through any link (the object
    /// was deallocated).  Returns how many were revoked.
    pub fn revoke_object(&mut self, object: ObjectId) -> usize {
        if self.live == 0 {
            return 0;
        }
        let mut revoked = 0;
        for idx in 0..self.slots.len() {
            if let Some(entry) = self.slots[idx] {
                if entry.object == object || entry.container == object {
                    self.slots[idx] = None;
                    self.free.push(idx as u32);
                    self.unindex(entry, idx as u32);
                    revoked += 1;
                }
            }
        }
        self.live -= revoked;
        revoked
    }

    /// Number of live handles.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no handles are installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Live handle counts aggregated per named object, in object order —
    /// what the kernel's holder index must forget when this table's
    /// thread dies.
    pub fn live_holdings(&self) -> Vec<(ObjectId, u64)> {
        let mut counts: std::collections::BTreeMap<ObjectId, u64> = Default::default();
        for (entry, slots) in &self.index {
            *counts.entry(entry.object).or_insert(0) += slots.len() as u64;
        }
        counts.into_iter().collect()
    }
}

/// One operation in a submission batch.
#[derive(Clone, Debug, PartialEq)]
pub enum SqOp {
    /// A system call.  `ContainerEntry` arguments may be handle-encoded
    /// (see [`Handle::entry`]); the dispatcher resolves them against the
    /// calling thread's handle table before the call runs.
    Call(Syscall),
    /// Resolve a container entry into a handle.  The kernel performs the
    /// standard reachability check (observe the container, link present)
    /// and installs the entry in the calling thread's handle table.
    HandleOpen {
        /// The entry to resolve.
        entry: ContainerEntry,
    },
    /// Drop a handle from the calling thread's handle table.
    HandleClose {
        /// The handle to drop.
        handle: Handle,
    },
}

/// One submission-queue entry: an operation plus the caller's correlation
/// token, echoed back in the matching [`Completion`].
#[derive(Clone, Debug, PartialEq)]
pub struct SqEntry {
    /// Caller-chosen token identifying this entry among the completions.
    pub user_data: u64,
    /// The operation.
    pub op: SqOp,
}

/// The payload of one completion.
#[derive(Clone, Debug, PartialEq)]
pub enum CompletionKind {
    /// The typed result of a submitted [`SqOp::Call`].
    Call(Result<SyscallResult, SyscallError>),
    /// The result of a [`SqOp::HandleOpen`].
    HandleOpened(Result<Handle, SyscallError>),
    /// The result of a [`SqOp::HandleClose`]: whether the handle was live.
    HandleClosed(bool),
    /// Kernel-pushed notification (no matching submission): an alert was
    /// posted to this thread.  The alert itself is still claimed with
    /// `self_take_alert`; the notification exists so a thread blocked on
    /// its completion queue wakes without polling.
    AlertPending {
        /// The alert's code.
        code: u64,
    },
    /// Kernel-pushed readiness notification (no matching submission): an
    /// object this thread registered a watch on (`segment_watch`) was
    /// written to or deallocated.  The watch is one-shot — a woken thread
    /// re-checks the object and re-registers if it still wants to wait.
    /// This is the wake half of blocking `read(2)`/`accept(2)`/`poll`.
    ObjectReady {
        /// The object that made progress.
        object: ObjectId,
    },
}

/// The `user_data` carried by kernel-originated completions (alert
/// notifications), which have no matching submission entry.
pub const KERNEL_USER_DATA: u64 = u64::MAX;

/// One completion-queue entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Completion {
    /// The token of the submission this completes, or
    /// [`KERNEL_USER_DATA`] for kernel-originated notifications.
    pub user_data: u64,
    /// What completed.
    pub kind: CompletionKind,
}

impl Completion {
    /// Unwraps a [`CompletionKind::Call`] payload; panics on any other
    /// kind (submission and reaping are ordered, so a caller that only
    /// submitted calls can rely on this).
    pub fn into_call_result(self) -> Result<SyscallResult, SyscallError> {
        match self.kind {
            CompletionKind::Call(r) => r,
            other => panic!("expected a call completion, got {other:?}"),
        }
    }

    /// Unwraps a [`CompletionKind::HandleOpened`] payload; panics on any
    /// other kind.
    pub fn into_handle_result(self) -> Result<Handle, SyscallError> {
        match self.kind {
            CompletionKind::HandleOpened(r) => r,
            other => panic!("expected a handle-open completion, got {other:?}"),
        }
    }
}

/// The user-side submission queue: entries accumulate here and cross the
/// trap boundary together via
/// [`Kernel::submit`](crate::kernel::Kernel::submit).
#[derive(Clone, Debug, Default)]
pub struct SubmissionQueue {
    entries: VecDeque<SqEntry>,
    next_user_data: u64,
}

impl SubmissionQueue {
    /// Creates an empty queue.
    pub fn new() -> SubmissionQueue {
        SubmissionQueue::default()
    }

    /// Queues an operation, returning the auto-assigned `user_data` token
    /// its completion will carry.
    pub fn push(&mut self, op: SqOp) -> u64 {
        let user_data = self.next_user_data;
        self.next_user_data += 1;
        self.entries.push_back(SqEntry { user_data, op });
        user_data
    }

    /// Queues a system call.
    pub fn call(&mut self, call: Syscall) -> u64 {
        self.push(SqOp::Call(call))
    }

    /// Queues a handle-open for `entry`.
    pub fn open_handle(&mut self, entry: ContainerEntry) -> u64 {
        self.push(SqOp::HandleOpen { entry })
    }

    /// Queues a handle-close.
    pub fn close_handle(&mut self, handle: Handle) -> u64 {
        self.push(SqOp::HandleClose { handle })
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes and returns all queued entries, oldest first.
    pub fn drain(&mut self) -> Vec<SqEntry> {
        self.entries.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(c: u64, o: u64) -> ContainerEntry {
        ContainerEntry::new(ObjectId::from_raw(c), ObjectId::from_raw(o))
    }

    #[test]
    fn handle_table_installs_resolves_and_reuses_slots() {
        let mut t = HandleTable::default();
        let h0 = t.install(e(1, 2));
        let h1 = t.install(e(1, 3));
        assert_eq!(h0, Handle(0));
        assert_eq!(h1, Handle(1));
        assert_eq!(t.resolve(h0), Some(e(1, 2)));
        assert_eq!(t.revoke(h0), Some(e(1, 2)));
        assert_eq!(t.resolve(h0), None);
        assert_eq!(t.revoke(h0), None, "double revoke is a no-op");
        // The freed slot is reused.
        let h2 = t.install(e(4, 5));
        assert_eq!(h2, Handle(0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn revocation_by_entry_and_by_object() {
        let mut t = HandleTable::default();
        let a = t.install(e(1, 2));
        let b = t.install(e(3, 2));
        let c = t.install(e(1, 9));
        assert_eq!(t.revoke_entry(e(1, 2)), 1, "only the exact link");
        assert_eq!(t.resolve(a), None);
        assert_eq!(t.resolve(b), Some(e(3, 2)));
        assert_eq!(t.revoke_object(ObjectId::from_raw(2)), 1, "any link to 2");
        assert_eq!(t.resolve(b), None);
        assert_eq!(t.resolve(c), Some(e(1, 9)));
        // Deallocating a container revokes handles resolved through it.
        assert_eq!(t.revoke_object(ObjectId::from_raw(1)), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn reverse_index_finds_in_constant_time_and_tracks_duplicates() {
        let mut t = HandleTable::default();
        // Many distinct entries, then duplicates of one of them.
        for i in 0..100 {
            t.install(e(1, 100 + i));
        }
        let a = t.install(e(9, 9));
        let b = t.install(e(9, 9));
        assert_ne!(a, b, "duplicate installs get distinct slots");
        // find returns the earliest-installed live duplicate...
        assert_eq!(t.find(e(9, 9)), Some(a));
        // ...and falls through to the next one when it is revoked.
        assert_eq!(t.revoke(a), Some(e(9, 9)));
        assert_eq!(t.find(e(9, 9)), Some(b));
        assert_eq!(t.revoke(b), Some(e(9, 9)));
        assert_eq!(t.find(e(9, 9)), None);
        // Slot reuse re-indexes under the new entry.
        let c = t.install(e(7, 7));
        assert_eq!(t.find(e(7, 7)), Some(c));
        assert_eq!(t.find(e(1, 100)), Some(Handle(0)));
        // revoke_entry removes every duplicate at once.
        let d1 = t.install(e(4, 4));
        let d2 = t.install(e(4, 4));
        assert_eq!(t.revoke_entry(e(4, 4)), 2);
        assert_eq!(t.resolve(d1), None);
        assert_eq!(t.resolve(d2), None);
        assert_eq!(t.find(e(4, 4)), None);
        // revoke_object keeps the index consistent too.
        assert_eq!(t.revoke_object(ObjectId::from_raw(7)), 1);
        assert_eq!(t.find(e(7, 7)), None);
    }

    #[test]
    fn handle_entries_round_trip_through_container_entry_encoding() {
        let h = Handle(7);
        let entry = h.entry();
        assert_eq!(entry.as_handle(), Some(h));
        assert_eq!(e(1, 2).as_handle(), None);
    }

    #[test]
    fn submission_queue_assigns_increasing_user_data() {
        let mut sq = SubmissionQueue::new();
        let a = sq.call(Syscall::CreateCategory);
        let b = sq.open_handle(e(1, 2));
        let c = sq.close_handle(Handle(0));
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(sq.len(), 3);
        let drained = sq.drain();
        assert!(sq.is_empty());
        assert_eq!(drained[0].user_data, 0);
        assert!(matches!(drained[1].op, SqOp::HandleOpen { .. }));
        assert!(matches!(
            drained[2].op,
            SqOp::HandleClose { handle: Handle(0) }
        ));
    }
}
