//! Per-type payloads of the six kernel object types.
//!
//! The kernel stores each object as an [`ObjectHeader`](crate::object::ObjectHeader)
//! plus one of the bodies defined here.  Figure 5 of the paper shows how the
//! types may link to each other: containers hold hard links to anything,
//! address spaces soft-link segments, threads soft-link address spaces, and
//! gates soft-link address spaces.

use crate::object::{ContainerEntry, ObjectId, ObjectType};
use histar_label::Label;

/// A segment: a variable-length byte array, similar to a file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentBody {
    /// The segment's contents.
    pub bytes: Vec<u8>,
}

impl SegmentBody {
    /// Creates a zero-filled segment of `len` bytes.
    pub fn zeroed(len: usize) -> SegmentBody {
        SegmentBody {
            bytes: vec![0u8; len],
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Resizes the segment, zero-filling any new space.
    pub fn resize(&mut self, len: usize) {
        self.bytes.resize(len, 0);
    }
}

/// A container: hierarchical holder of hard links (§3.2).
///
/// Membership is probed on every syscall's `check_entry`, so the
/// insertion-ordered link list carries a sorted index alongside it:
/// `contains` is O(log n) however many threads a burst links into one
/// container, while enumeration (and the snapshot encoding) still sees
/// insertion order.
#[derive(Clone, Debug, Default)]
pub struct ContainerBody {
    /// Hard links to objects, in insertion order.
    pub(crate) links: Vec<ObjectId>,
    /// Membership index over `links` (invariant: identical contents).
    index: std::collections::BTreeSet<ObjectId>,
    /// Object ID of the parent container (`None` only for the root).
    pub parent: Option<ObjectId>,
    /// Bitmask of [`ObjectType::mask_bit`]s that may *not* be created in
    /// this container or any of its descendants.
    pub avoid_types: u8,
}

impl ContainerBody {
    /// Rebuilds a container body from its serialized parts, restoring the
    /// membership index.
    pub fn with_links(
        links: Vec<ObjectId>,
        parent: Option<ObjectId>,
        avoid_types: u8,
    ) -> ContainerBody {
        let index = links.iter().copied().collect();
        ContainerBody {
            links,
            index,
            parent,
            avoid_types,
        }
    }

    /// Returns true if the container holds a link to `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.index.contains(&id)
    }

    /// The linked objects, in insertion order.
    pub fn links(&self) -> &[ObjectId] {
        &self.links
    }

    /// Adds a hard link (idempotent).
    pub fn link(&mut self, id: ObjectId) {
        if self.index.insert(id) {
            self.links.push(id);
        }
    }

    /// Removes a hard link, returning true if it was present.  The ordered
    /// list shifts (O(n) memmove); the hot path is `contains`, not unlink.
    pub fn unlink(&mut self, id: ObjectId) -> bool {
        if self.index.remove(&id) {
            let pos = self
                .links
                .iter()
                .position(|&x| x == id)
                .expect("index and links agree");
            self.links.remove(pos);
            true
        } else {
            false
        }
    }

    /// Whether objects of `ty` may be created under this container.
    pub fn allows_type(&self, ty: ObjectType) -> bool {
        self.avoid_types & ty.mask_bit() == 0
    }
}

/// The scheduling state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// The thread may run.
    Runnable,
    /// The thread is blocked on a futex word.
    Blocked,
    /// The thread has been halted and will never run again.
    Halted,
}

/// A pending alert delivered to a thread (the kernel half of Unix signals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    /// Argument passed to the alert handler (the Unix library passes the
    /// signal number here).
    pub code: u64,
}

/// Wake-state bit: the thread has at least one undelivered alert.
pub const WAKE_ALERT: u8 = 1 << 0;
/// Wake-state bit: the thread has at least one unreaped completion.
pub const WAKE_COMPLETION: u8 = 1 << 1;

/// A thread: the only active object type (§3.1).
///
/// The thread's label and clearance are mutable (via `self_set_label` /
/// `self_set_clearance`); everything else about the thread's identity is
/// fixed at creation.
#[derive(Clone, Debug)]
pub struct ThreadBody {
    /// The thread's clearance, bounding how far it may taint itself.
    pub clearance: Label,
    /// Container entry of the thread's current address space.
    pub address_space: Option<ContainerEntry>,
    /// Abstract entry point (the user-level library interprets it).
    pub entry_point: u64,
    /// Current scheduling state.
    pub state: ThreadState,
    /// Object ID of the thread-local segment (always writable by the
    /// thread; mapped via a reserved object ID in real HiStar).
    pub local_segment: Option<ObjectId>,
    /// Alerts queued for delivery.
    pub pending_alerts: Vec<Alert>,
    /// Wake-state bits ([`WAKE_ALERT`] | [`WAKE_COMPLETION`]), maintained
    /// by the kernel at alert-post/take and completion-push/reap time so
    /// the scheduler's wake probe is a single O(1) read instead of three
    /// queue inspections.  Not persisted: the alert bit is recomputed from
    /// `pending_alerts` on decode, and completions are ABI-edge state that
    /// dies with a snapshot anyway.
    pub wake_flags: u8,
}

impl ThreadBody {
    /// Creates a runnable thread body with the given clearance.
    pub fn new(clearance: Label) -> ThreadBody {
        ThreadBody {
            clearance,
            address_space: None,
            entry_point: 0,
            state: ThreadState::Runnable,
            local_segment: None,
            pending_alerts: Vec::new(),
            wake_flags: 0,
        }
    }
}

/// Access permissions of one address-space mapping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MappingFlags {
    /// Reads are permitted.
    pub read: bool,
    /// Writes are permitted.
    pub write: bool,
    /// Instruction fetches are permitted.
    pub execute: bool,
}

impl MappingFlags {
    /// Read-only mapping.
    pub fn ro() -> MappingFlags {
        MappingFlags {
            read: true,
            write: false,
            execute: false,
        }
    }

    /// Read-write mapping.
    pub fn rw() -> MappingFlags {
        MappingFlags {
            read: true,
            write: true,
            execute: false,
        }
    }

    /// Read-execute mapping.
    pub fn rx() -> MappingFlags {
        MappingFlags {
            read: true,
            write: false,
            execute: true,
        }
    }
}

/// One `VA → ⟨segment, offset, npages, flags⟩` mapping (§3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// Page-aligned virtual address.
    pub va: u64,
    /// Container entry of the mapped segment.
    pub segment: ContainerEntry,
    /// Byte offset within the segment.
    pub offset: u64,
    /// Number of 4 KiB pages mapped.
    pub npages: u64,
    /// Access permissions.
    pub flags: MappingFlags,
}

/// An address space: a list of mappings.
#[derive(Clone, Debug, Default)]
pub struct AddressSpaceBody {
    /// The mappings, in no particular order.
    pub mappings: Vec<Mapping>,
}

impl AddressSpaceBody {
    /// Finds the mapping covering virtual address `va`, if any.
    pub fn lookup(&self, va: u64) -> Option<&Mapping> {
        self.mappings
            .iter()
            .find(|m| va >= m.va && va < m.va + m.npages * 4096)
    }

    /// Inserts or replaces the mapping starting at `mapping.va`.
    pub fn map(&mut self, mapping: Mapping) {
        self.unmap(mapping.va);
        self.mappings.push(mapping);
    }

    /// Removes the mapping starting at `va`, returning true if one existed.
    pub fn unmap(&mut self, va: u64) -> bool {
        let before = self.mappings.len();
        self.mappings.retain(|m| m.va != va);
        self.mappings.len() != before
    }
}

/// A gate: protected control transfer with privilege (§3.5).
#[derive(Clone, Debug)]
pub struct GateBody {
    /// The gate's clearance, an upper bound on the label a caller may
    /// request when entering.
    pub clearance: Label,
    /// Container entry of the address space the invoking thread switches to.
    pub address_space: Option<ContainerEntry>,
    /// Initial entry point for threads entering through the gate.
    pub entry_point: u64,
    /// Initial stack pointer.
    pub stack_pointer: u64,
    /// Closure arguments passed to the entry-point function.
    pub closure_args: Vec<u64>,
}

impl GateBody {
    /// Creates a gate body with the given clearance and entry point.
    pub fn new(clearance: Label, entry_point: u64) -> GateBody {
        GateBody {
            clearance,
            address_space: None,
            entry_point,
            stack_pointer: 0,
            closure_args: Vec::new(),
        }
    }
}

/// Which device a device object models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// A network interface (the paper's only user-visible device type).
    Network,
    /// A console/TTY used by examples to show user-visible output.
    Console,
    /// An exporter endpoint: the network interface dedicated to a node's
    /// exporter daemon, which tunnels label-protected data to other HiStar
    /// machines (the DStar-style federation layer).
    Exporter,
}

/// A device object: the kernel network API is just "get the MAC address,
/// provide a transmit or receive buffer, wait for completion" (§4).
#[derive(Clone, Debug)]
pub struct DeviceBody {
    /// What kind of device this is.
    pub kind: DeviceKind,
    /// MAC address (network devices).
    pub mac: [u8; 6],
    /// Frames received from the outside world, waiting for a receive buffer.
    pub rx_queue: Vec<Vec<u8>>,
    /// Frames transmitted by the machine.
    pub tx_queue: Vec<Vec<u8>>,
}

impl DeviceBody {
    /// Creates a network device with the given MAC address.
    pub fn network(mac: [u8; 6]) -> DeviceBody {
        DeviceBody {
            kind: DeviceKind::Network,
            mac,
            rx_queue: Vec::new(),
            tx_queue: Vec::new(),
        }
    }

    /// Creates a console device.
    pub fn console() -> DeviceBody {
        DeviceBody {
            kind: DeviceKind::Console,
            mac: [0; 6],
            rx_queue: Vec::new(),
            tx_queue: Vec::new(),
        }
    }

    /// Creates an exporter endpoint device with the given MAC address.
    pub fn exporter(mac: [u8; 6]) -> DeviceBody {
        DeviceBody {
            kind: DeviceKind::Exporter,
            mac,
            rx_queue: Vec::new(),
            tx_queue: Vec::new(),
        }
    }
}

/// The body of a kernel object: exactly one of the six types.
#[derive(Clone, Debug)]
pub enum ObjectBody {
    /// See [`SegmentBody`].
    Segment(SegmentBody),
    /// See [`ContainerBody`].
    Container(ContainerBody),
    /// See [`ThreadBody`].
    Thread(ThreadBody),
    /// See [`AddressSpaceBody`].
    AddressSpace(AddressSpaceBody),
    /// See [`GateBody`].
    Gate(GateBody),
    /// See [`DeviceBody`].
    Device(DeviceBody),
}

impl ObjectBody {
    /// The object type of this body.
    pub fn object_type(&self) -> ObjectType {
        match self {
            ObjectBody::Segment(_) => ObjectType::Segment,
            ObjectBody::Container(_) => ObjectType::Container,
            ObjectBody::Thread(_) => ObjectType::Thread,
            ObjectBody::AddressSpace(_) => ObjectType::AddressSpace,
            ObjectBody::Gate(_) => ObjectType::Gate,
            ObjectBody::Device(_) => ObjectType::Device,
        }
    }

    /// Approximate storage footprint of the body in bytes, used for quota
    /// accounting.
    pub fn storage_bytes(&self) -> u64 {
        match self {
            ObjectBody::Segment(s) => s.bytes.len() as u64,
            ObjectBody::Container(c) => 64 + 8 * c.links.len() as u64,
            ObjectBody::Thread(_) => 512,
            ObjectBody::AddressSpace(a) => 64 + 48 * a.mappings.len() as u64,
            ObjectBody::Gate(g) => 128 + 8 * g.closure_args.len() as u64,
            ObjectBody::Device(_) => 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_label::{Label, Level};

    fn ce(c: u64, o: u64) -> ContainerEntry {
        ContainerEntry::new(ObjectId::from_raw(c), ObjectId::from_raw(o))
    }

    #[test]
    fn segment_resize_zero_fills() {
        let mut s = SegmentBody::default();
        assert!(s.is_empty());
        s.resize(10);
        s.bytes[5] = 7;
        s.resize(20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.bytes[5], 7);
        assert_eq!(s.bytes[15], 0);
        s.resize(3);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn container_link_unlink() {
        let mut c = ContainerBody::default();
        let a = ObjectId::from_raw(1);
        let b = ObjectId::from_raw(2);
        c.link(a);
        c.link(a); // idempotent
        c.link(b);
        assert_eq!(c.links.len(), 2);
        assert!(c.contains(a));
        assert!(c.unlink(a));
        assert!(!c.unlink(a));
        assert!(!c.contains(a));
    }

    #[test]
    fn container_avoid_types() {
        let mut c = ContainerBody::default();
        assert!(c.allows_type(ObjectType::Thread));
        c.avoid_types = ObjectType::Thread.mask_bit() | ObjectType::Device.mask_bit();
        assert!(!c.allows_type(ObjectType::Thread));
        assert!(!c.allows_type(ObjectType::Device));
        assert!(c.allows_type(ObjectType::Segment));
    }

    #[test]
    fn address_space_lookup_and_replace() {
        let mut aspace = AddressSpaceBody::default();
        aspace.map(Mapping {
            va: 0x1000,
            segment: ce(1, 2),
            offset: 0,
            npages: 2,
            flags: MappingFlags::rw(),
        });
        aspace.map(Mapping {
            va: 0x4000,
            segment: ce(1, 3),
            offset: 0,
            npages: 1,
            flags: MappingFlags::ro(),
        });
        assert_eq!(aspace.lookup(0x1000).unwrap().segment, ce(1, 2));
        assert_eq!(aspace.lookup(0x2fff).unwrap().segment, ce(1, 2));
        assert!(aspace.lookup(0x3000).is_none());
        assert_eq!(aspace.lookup(0x4000).unwrap().flags, MappingFlags::ro());
        // Re-mapping the same VA replaces the old mapping.
        aspace.map(Mapping {
            va: 0x1000,
            segment: ce(1, 9),
            offset: 0,
            npages: 1,
            flags: MappingFlags::rx(),
        });
        assert_eq!(aspace.lookup(0x1000).unwrap().segment, ce(1, 9));
        assert_eq!(aspace.mappings.len(), 2);
        assert!(aspace.unmap(0x4000));
        assert!(!aspace.unmap(0x4000));
    }

    #[test]
    fn body_types_and_storage() {
        let label = Label::new(Level::L2);
        let bodies = [
            ObjectBody::Segment(SegmentBody::zeroed(100)),
            ObjectBody::Thread(ThreadBody::new(label.clone())),
            ObjectBody::AddressSpace(AddressSpaceBody::default()),
            ObjectBody::Gate(GateBody::new(label, 0)),
            ObjectBody::Container(ContainerBody::default()),
            ObjectBody::Device(DeviceBody::network([1, 2, 3, 4, 5, 6])),
        ];
        let types: Vec<ObjectType> = bodies.iter().map(|b| b.object_type()).collect();
        assert_eq!(types, ObjectType::ALL.to_vec() as Vec<ObjectType>);
        for b in &bodies {
            assert!(b.storage_bytes() > 0 || matches!(b, ObjectBody::Segment(_)));
        }
        assert_eq!(bodies[0].storage_bytes(), 100);
    }

    #[test]
    fn mapping_flag_constructors() {
        assert!(MappingFlags::ro().read && !MappingFlags::ro().write);
        assert!(MappingFlags::rw().write);
        assert!(MappingFlags::rx().execute && !MappingFlags::rx().write);
    }

    #[test]
    fn device_constructors() {
        let n = DeviceBody::network([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(n.kind, DeviceKind::Network);
        assert_eq!(n.mac[0], 0xde);
        let c = DeviceBody::console();
        assert_eq!(c.kind, DeviceKind::Console);
    }
}
