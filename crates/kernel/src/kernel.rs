//! The kernel proper: object table plus the system-call surface.
//!
//! Every public `sys_*` method corresponds to a HiStar system call and is
//! invoked on behalf of a *calling thread* named by its object ID.  Each
//! call performs exactly the label checks the paper specifies before
//! touching any state, counts itself in [`SyscallStats`], and charges its
//! CPU cost to the machine clock (when one is attached).

use crate::abi::{Completion, CompletionKind, Handle, HandleTable, KERNEL_USER_DATA};
use crate::bodies::{
    AddressSpaceBody, Alert, ContainerBody, DeviceBody, GateBody, Mapping, ObjectBody, SegmentBody,
    ThreadBody, ThreadState, WAKE_ALERT, WAKE_COMPLETION,
};
use crate::dispatch::{DispatchStats, SyscallTrace};
use crate::object::{
    truncate_descrip, ContainerEntry, ObjectHeader, ObjectId, ObjectType, METADATA_LEN,
    OBJECT_ID_MASK, QUOTA_INFINITE,
};
use crate::syscall::{SyscallError, SyscallStats};
use histar_label::category::FeistelCipher;
use histar_label::{Category, CategoryAllocator, Label, LabelCache, Level};
use histar_obs::{MetricSet, Recorder};
use histar_sim::{CostModel, OsFlavor, SimClock, SimDuration};
use histar_store::codec::{Decoder, Encoder};
use histar_store::records::is_persist_key;
use histar_store::SingleLevelStore;
// The object table is the one sanctioned HashMap in this crate (hot
// per-syscall lookups; every iteration site sorts before order becomes
// visible) — allowed here and at each use, and listed by flowcheck.
#[allow(clippy::disallowed_types)]
use std::collections::{BTreeMap, HashMap};

/// Size of one page, matching the simulated hardware.
pub const PAGE_SIZE: u64 = 4096;

/// One kernel object: header plus type-specific body.
#[derive(Clone, Debug)]
pub struct KObject {
    /// The object's header (identity, label, quota, flags).
    pub header: ObjectHeader,
    /// The object's type-specific payload.
    pub body: ObjectBody,
}

/// The result of a successful gate invocation: where the thread now runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateEntryResult {
    /// The thread's new label.
    pub label: Label,
    /// The thread's new clearance.
    pub clearance: Label,
    /// The address space the thread switched to (if the gate named one).
    pub address_space: Option<ContainerEntry>,
    /// The gate's entry point.
    pub entry_point: u64,
    /// The gate's initial stack pointer.
    pub stack_pointer: u64,
    /// The gate's closure arguments.
    pub closure_args: Vec<u64>,
}

/// What the scheduler should do with a parked thread, answered by
/// [`Kernel::wake_eligibility`] in one O(1) probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeReason {
    /// The thread halted or no longer exists: retire its program.
    Retired,
    /// The thread is already runnable again (an external `sched_wake`):
    /// requeue it without charging a wakeup.
    External,
    /// An undelivered alert is pending: wake it.
    Alert,
    /// An unreaped completion is pending: wake it.
    Completion,
    /// Nothing happened — the dirty mark was spurious; stay parked.
    Parked,
}

/// Where a page fault resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageFaultResolution {
    /// The mapped segment.
    pub segment: ContainerEntry,
    /// Byte offset within the segment corresponding to the faulting address.
    pub offset: u64,
    /// Whether the mapping permits writes.
    pub writable: bool,
}

/// The globally meaningful name of a category as exported off-machine: the
/// hash of the owning exporter's public key plus a per-exporter identifier.
/// The pair is self-certifying — it names both the category and the only
/// exporter entitled to speak for it — so label checks survive the network
/// hop without a trusted naming authority.
pub type RemoteCategoryName = (u64, u64);

/// The HiStar kernel.
#[derive(Debug)]
pub struct Kernel {
    #[allow(clippy::disallowed_types)]
    objects: HashMap<ObjectId, KObject>,
    root: ObjectId,
    categories: CategoryAllocator,
    id_cipher: FeistelCipher,
    id_counter: u64,
    label_cache: LabelCache,
    clock: Option<SimClock>,
    cost: CostModel,
    stats: SyscallStats,
    /// The address space of the most recently active thread, used to decide
    /// whether a switch can use the cheap `invlpg` path.
    last_address_space: Option<ContainerEntry>,
    /// Category-translation table maintained for exporters: local category →
    /// self-certifying global name.  Bindings are immutable once set, so a
    /// label translated out and back can never silently change category.
    remote_bindings: BTreeMap<Category, RemoteCategoryName>,
    /// Reverse index of `remote_bindings` (global name → local category).
    remote_index: BTreeMap<RemoteCategoryName, Category>,
    /// Per-syscall counters for calls crossing the dispatch boundary.
    dispatch_stats: DispatchStats,
    /// The bounded audit trace of dispatched syscalls, when enabled.
    trace: Option<SyscallTrace>,
    /// The flight recorder dispatched syscalls (and the scheduler/store,
    /// which hold clones of this handle) emit spans into.  Disabled by
    /// default — recording charges no simulated time either way, so the
    /// only cost of enabling it is host memory for the ring.
    recorder: Recorder,
    /// Monotonic sequence number tagging dispatch spans, so a trace viewer
    /// can correlate a span with its audit-trace record even after ring
    /// eviction.
    dispatch_seq: u64,
    /// Dispatched-syscall counts per calling thread, for the per-activity
    /// metrics filesystem.  Entries die with their thread.
    per_thread_syscalls: BTreeMap<ObjectId, u64>,
    /// Per-thread capability handle tables (ABI-edge state, not persisted).
    handles: BTreeMap<ObjectId, HandleTable>,
    /// Reverse index over every thread's handle table: object → the
    /// threads holding live handles naming it (with a refcount per
    /// thread).  Unref/dealloc revocation sweeps visit exactly the holder
    /// threads instead of every thread that ever opened a handle, so
    /// severing one link stays O(holders) with 10⁵ threads resident.
    handle_holders: BTreeMap<ObjectId, BTreeMap<ObjectId, u64>>,
    /// Per-thread completion queues (ABI-edge state, not persisted).
    completions: BTreeMap<ObjectId, std::collections::VecDeque<Completion>>,
    /// One-shot readiness watches: object → threads to notify (with an
    /// `ObjectReady` completion) when the object is next written or
    /// deallocated.  Registered via `segment_watch`; this is how blocking
    /// pipe/socket reads park without polling.
    watchers: BTreeMap<ObjectId, Vec<ObjectId>>,
    /// Threads whose wake conditions may have changed since the scheduler
    /// last looked (completion pushed, explicitly woken, or deallocated),
    /// in event order.  The scheduler drains this instead of scanning its
    /// whole wait set every quantum, so wakes are O(events) not O(parked).
    sched_dirty: Vec<ObjectId>,
    /// Dedup set for `sched_dirty`.
    sched_dirty_set: std::collections::BTreeSet<ObjectId>,
    /// The scheduler's last published counter snapshot (the scheduler
    /// lives outside the kernel, but its counters belong to the machine's
    /// metrics registry so `/metrics/sched` can serve them).
    sched_metrics: MetricSet,
    /// True while a submission batch is being drained: the first call
    /// charges the full trap cost, the rest only the batched decode cost.
    in_batch: bool,
    /// Whether the current batch has charged its trap cost yet.
    batch_trap_charged: bool,
    /// The machine's single-level store, when this kernel is part of a
    /// [`Machine`](crate::Machine).  The persist-record syscalls operate
    /// on it directly — data in the persist namespace bypasses the object
    /// heap entirely — and having it here lets those calls ride the same
    /// batched submission path (and audit trace) as every other syscall.
    store: Option<SingleLevelStore>,
}

impl Kernel {
    /// Creates a kernel with a fresh root container.
    ///
    /// `seed` keys the object-ID and category-name ciphers (deterministic
    /// for a given seed); `clock` is the machine clock costs are charged to
    /// (pass `None` for pure functional tests).
    pub fn new(seed: u64, clock: Option<SimClock>) -> Kernel {
        let mut kernel = Kernel {
            objects: Default::default(),
            root: ObjectId::from_raw(0),
            categories: CategoryAllocator::new(seed ^ 0xcafe),
            id_cipher: FeistelCipher::new(seed ^ 0xbeef),
            id_counter: 0,
            label_cache: LabelCache::new(),
            clock,
            cost: CostModel::for_flavor(OsFlavor::HiStar),
            stats: SyscallStats::default(),
            last_address_space: None,
            remote_bindings: BTreeMap::new(),
            remote_index: BTreeMap::new(),
            dispatch_stats: DispatchStats::default(),
            trace: None,
            recorder: Recorder::disabled(),
            dispatch_seq: 0,
            per_thread_syscalls: BTreeMap::new(),
            handles: BTreeMap::new(),
            handle_holders: BTreeMap::new(),
            completions: BTreeMap::new(),
            watchers: BTreeMap::new(),
            sched_dirty: Vec::new(),
            sched_dirty_set: std::collections::BTreeSet::new(),
            sched_metrics: MetricSet::new(),
            in_batch: false,
            batch_trap_charged: false,
            store: None,
        };
        let root_id = kernel.fresh_id();
        let mut header = ObjectHeader::new(
            root_id,
            ObjectType::Container,
            Label::unrestricted(),
            QUOTA_INFINITE,
            "root container",
        );
        header.links = 1; // the root is always referenced
        kernel.objects.insert(
            root_id,
            KObject {
                header,
                body: ObjectBody::Container(ContainerBody::default()),
            },
        );
        kernel.root = root_id;
        kernel
    }

    /// The root container's object ID.
    pub fn root_container(&self) -> ObjectId {
        self.root
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> SyscallStats {
        self.stats
    }

    /// Per-syscall counters for the trapped (dispatched) call stream.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.dispatch_stats
    }

    pub(crate) fn dispatch_stats_mut(&mut self) -> &mut DispatchStats {
        &mut self.dispatch_stats
    }

    pub(crate) fn trace_mut(&mut self) -> Option<&mut SyscallTrace> {
        self.trace.as_mut()
    }

    /// Starts recording dispatched syscalls into a ring buffer holding at
    /// most `capacity` records (replacing any previous trace).
    pub fn enable_syscall_trace(&mut self, capacity: usize) {
        self.trace = Some(SyscallTrace::new(capacity));
    }

    /// Stops tracing and discards the buffer.
    pub fn disable_syscall_trace(&mut self) {
        self.trace = None;
    }

    /// The current audit trace, if tracing is enabled.
    pub fn syscall_trace(&self) -> Option<&SyscallTrace> {
        self.trace.as_ref()
    }

    /// The kernel's flight recorder (disabled by default).  The scheduler,
    /// store and exporter fabric clone this handle, so enabling it here is
    /// enabled everywhere that shares the kernel.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Starts span recording into a fresh bounded ring of `capacity` spans,
    /// replacing any previous recorder.  Returns a handle to the new ring.
    pub fn enable_flight_recorder(&mut self, capacity: usize) -> Recorder {
        self.recorder = Recorder::with_capacity(capacity);
        if let Some(store) = self.store.as_mut() {
            store.set_recorder(self.recorder.clone());
        }
        self.recorder.clone()
    }

    /// Installs an externally created recorder (e.g. the one that already
    /// holds a machine's recovery spans), replacing any previous one.
    pub fn install_recorder(&mut self, recorder: Recorder) {
        if let Some(store) = self.store.as_mut() {
            store.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Stops span recording and drops the ring.
    pub fn disable_flight_recorder(&mut self) {
        self.install_recorder(Recorder::disabled());
    }

    pub(crate) fn next_dispatch_seq(&mut self) -> u64 {
        let seq = self.dispatch_seq;
        self.dispatch_seq += 1;
        seq
    }

    pub(crate) fn note_thread_syscall(&mut self, tid: ObjectId) {
        *self.per_thread_syscalls.entry(tid).or_insert(0) += 1;
    }

    /// Dispatched-syscall count for one thread (zero if it never trapped,
    /// or was deallocated — the counter dies with the thread).
    pub fn thread_syscalls(&self, tid: ObjectId) -> u64 {
        self.per_thread_syscalls.get(&tid).copied().unwrap_or(0)
    }

    /// IDs of every live container, in stable (sorted) order — the
    /// enumeration the per-container metrics filesystem serves, with each
    /// entry's visibility decided by its own label at read time.
    pub fn container_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, o)| o.header.object_type == ObjectType::Container)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable_by_key(|id| id.raw());
        ids
    }

    /// One snapshot of every counter the kernel and its attached subsystems
    /// maintain: syscall + dispatch stats, the label-comparison cache, and
    /// (when a store is attached) store/WAL/disk counters.  Collecting a
    /// snapshot charges no simulated time.
    pub fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.collect(&self.stats);
        set.collect(&self.dispatch_stats);
        set.collect(&self.label_cache.stats());
        set.gauge("kernel.objects", self.object_count() as u64);
        set.gauge("kernel.threads_with_handles", self.handles.len() as u64);
        if let Some(trace) = &self.trace {
            set.counter("trace.recorded", trace.total_recorded());
            set.counter("trace.dropped", trace.dropped());
        }
        set.counter("spans.recorded", self.recorder.total_recorded());
        set.counter("spans.dropped", self.recorder.dropped());
        if let Some(store) = &self.store {
            set.collect(&store.stats());
            set.collect(&store.wal_stats());
            set.collect(&store.disk_stats());
        }
        set.extend(&self.sched_metrics);
        set
    }

    /// Stores the scheduler's latest counter snapshot (counters plus
    /// per-shard queue-depth gauges) so `metrics()` — and therefore
    /// `/metrics/sched` — serves scheduling alongside every kernel-owned
    /// source.  The scheduler calls this at the end of every `run`.
    pub fn publish_sched_metrics(&mut self, set: MetricSet) {
        self.sched_metrics = set;
    }

    /// Simulated time since boot (zero when no clock is attached).
    pub fn now(&self) -> SimDuration {
        self.clock
            .as_ref()
            .map(|c| c.now())
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of live objects (including the root container).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The label-comparison cache statistics (for the ablation benchmark).
    pub fn label_cache_stats(&self) -> histar_label::cache::CacheStats {
        self.label_cache.stats()
    }

    /// Disables the immutable-label comparison cache (ablation benchmark).
    pub fn clear_label_cache(&mut self) {
        self.label_cache.clear_comparisons();
    }

    // ----- internal helpers ---------------------------------------------

    fn fresh_id(&mut self) -> ObjectId {
        loop {
            let id = self.id_cipher.encrypt(self.id_counter) & OBJECT_ID_MASK;
            self.id_counter += 1;
            // The all-ones ID is reserved as the handle namespace (see
            // `object::HANDLE_NAMESPACE`); no real object may carry it.
            if id != crate::object::HANDLE_NAMESPACE.raw() {
                return ObjectId::from_raw(id);
            }
        }
    }

    fn charge(&mut self, d: SimDuration) {
        if let Some(clock) = &self.clock {
            clock.advance(d);
        }
    }

    fn charge_syscall(&mut self) {
        self.stats.syscalls += 1;
        self.charge_boundary();
    }

    /// Charges one boundary crossing.  Inside a submission batch the
    /// kernel is entered once: the first operation pays the full trap
    /// cost, the rest only the per-entry decode cost.  Counters are
    /// unaffected — only charged time amortizes.
    fn charge_boundary(&mut self) {
        let c = if self.in_batch && self.batch_trap_charged {
            self.cost.syscall_batched_entry
        } else {
            self.batch_trap_charged = true;
            self.cost.syscall
        };
        self.charge(c);
    }

    /// Enters batch mode: the next `charge_syscall` pays the full trap
    /// cost, subsequent ones only the decode cost, until `end_batch`.
    /// The store opens a group-commit window for the same span, so every
    /// `persist_sync` in the batch rides one shared WAL frame.
    pub(crate) fn begin_batch(&mut self) {
        self.in_batch = true;
        self.batch_trap_charged = false;
        if let Some(store) = self.store.as_mut() {
            store.begin_sync_group();
        }
    }

    /// Leaves batch mode.  Closing the store's group-commit window flushes
    /// the coalesced syncs as one multi-record frame — this runs BEFORE
    /// any completion is delivered, so a sync is acked only after the
    /// shared append is durable.
    pub(crate) fn end_batch(&mut self) {
        self.in_batch = false;
        self.batch_trap_charged = false;
        if let Some(store) = self.store.as_mut() {
            store.end_sync_group();
        }
    }

    fn obj(&self, id: ObjectId) -> Result<&KObject, SyscallError> {
        self.objects.get(&id).ok_or(SyscallError::NoSuchObject(id))
    }

    fn obj_mut(&mut self, id: ObjectId) -> Result<&mut KObject, SyscallError> {
        self.objects
            .get_mut(&id)
            .ok_or(SyscallError::NoSuchObject(id))
    }

    /// Returns the object if it has the expected type.
    fn typed(&self, id: ObjectId, expected: ObjectType) -> Result<&KObject, SyscallError> {
        let o = self.obj(id)?;
        if o.header.object_type != expected {
            return Err(SyscallError::WrongType {
                found: o.header.object_type,
                expected,
            });
        }
        Ok(o)
    }

    fn container(&self, id: ObjectId) -> Result<(&ObjectHeader, &ContainerBody), SyscallError> {
        let o = self.typed(id, ObjectType::Container)?;
        match &o.body {
            ObjectBody::Container(c) => Ok((&o.header, c)),
            _ => unreachable!("typed() checked the object type"),
        }
    }

    fn thread(&self, id: ObjectId) -> Result<(&ObjectHeader, &ThreadBody), SyscallError> {
        let o = self.typed(id, ObjectType::Thread)?;
        match &o.body {
            ObjectBody::Thread(t) => Ok((&o.header, t)),
            _ => unreachable!("typed() checked the object type"),
        }
    }

    fn thread_mut(
        &mut self,
        id: ObjectId,
    ) -> Result<(&mut ObjectHeader, &mut ThreadBody), SyscallError> {
        let o = self.obj_mut(id)?;
        match &mut o.body {
            ObjectBody::Thread(t) => Ok((&mut o.header, t)),
            _ => Err(SyscallError::WrongType {
                found: o.header.object_type,
                expected: ObjectType::Thread,
            }),
        }
    }

    /// Fetches the calling thread's label and clearance, verifying the
    /// thread exists and is runnable.  Also accounts for the syscall.
    fn calling_thread(&mut self, tid: ObjectId) -> Result<(Label, Label), SyscallError> {
        self.charge_syscall();
        let (header, body) = match self.thread(tid) {
            Ok(x) => x,
            Err(e) => {
                self.stats.errors += 1;
                return Err(e);
            }
        };
        if body.state == ThreadState::Halted {
            self.stats.errors += 1;
            return Err(SyscallError::ThreadHalted(tid));
        }
        Ok((header.label.clone(), body.clearance.clone()))
    }

    /// The label of any thread (kernel-internal, no checks).
    pub fn thread_label(&self, tid: ObjectId) -> Result<Label, SyscallError> {
        Ok(self.thread(tid)?.0.label.clone())
    }

    /// The clearance of any thread (kernel-internal, no checks).
    pub fn thread_clearance(&self, tid: ObjectId) -> Result<Label, SyscallError> {
        Ok(self.thread(tid)?.1.clearance.clone())
    }

    /// The scheduling state of any thread (scheduler hook, no checks).
    pub fn thread_state(&self, tid: ObjectId) -> Result<ThreadState, SyscallError> {
        Ok(self.thread(tid)?.1.state)
    }

    /// What the scheduler should do with a parked thread — the single O(1)
    /// wake probe.  The answer is read from the thread's scheduling state
    /// and its wake-state bits, which the kernel maintains at the moment
    /// an alert is posted or taken and a completion is pushed or reaped;
    /// no queue is inspected here.  This replaced the three-call probe
    /// (`thread_state` + pending-alert scan + completion-queue scan) the
    /// scheduler used to make per dirty thread.
    pub fn wake_eligibility(&self, tid: ObjectId) -> WakeReason {
        match self.thread(tid) {
            Err(_) => WakeReason::Retired,
            Ok((_, body)) => match body.state {
                ThreadState::Halted => WakeReason::Retired,
                ThreadState::Runnable => WakeReason::External,
                ThreadState::Blocked => {
                    // Alerts outrank completions, preserving the wake
                    // priority the scheduler has always applied.
                    if body.wake_flags & WAKE_ALERT != 0 {
                        WakeReason::Alert
                    } else if body.wake_flags & WAKE_COMPLETION != 0 {
                        WakeReason::Completion
                    } else {
                        WakeReason::Parked
                    }
                }
            },
        }
    }

    /// Scheduler hook: marks a blocked thread runnable again (alert arrival
    /// or explicit wake).  Halted threads stay halted.
    pub fn sched_wake(&mut self, tid: ObjectId) -> Result<(), SyscallError> {
        self.sched_mark_dirty(tid);
        let (_, body) = self.thread_mut(tid)?;
        if body.state == ThreadState::Blocked {
            body.state = ThreadState::Runnable;
        }
        Ok(())
    }

    /// Records that `tid`'s wake conditions may have changed.  The
    /// scheduler re-examines exactly these threads instead of scanning its
    /// whole wait set, which is what keeps 10⁴+ parked clients cheap.
    pub fn sched_mark_dirty(&mut self, tid: ObjectId) {
        if self.sched_dirty_set.insert(tid) {
            self.sched_dirty.push(tid);
        }
    }

    /// Drains the set of threads whose wake conditions may have changed
    /// since the last call, in event order (scheduler hook).
    pub fn take_sched_dirty(&mut self) -> Vec<ObjectId> {
        self.sched_dirty_set.clear();
        std::mem::take(&mut self.sched_dirty)
    }

    /// Scheduler hook: parks a runnable thread until the next wake.  Halted
    /// threads stay halted.
    pub fn sched_block(&mut self, tid: ObjectId) -> Result<(), SyscallError> {
        let (_, body) = self.thread_mut(tid)?;
        if body.state == ThreadState::Runnable {
            body.state = ThreadState::Blocked;
        }
        Ok(())
    }

    /// Scheduler hook: accounts the context switch onto `tid` (full TLB
    /// flush, or the cheap `invlpg` path when the incoming thread shares the
    /// outgoing thread's address space) and charges it to the clock.
    pub fn sched_context_switch(&mut self, tid: ObjectId) -> Result<(), SyscallError> {
        let new_as = self.thread(tid)?.1.address_space;
        self.account_context_switch(new_as);
        Ok(())
    }

    /// Scheduler hook: charges one scheduling quantum of CPU time to the
    /// machine clock.
    pub fn sched_charge(&mut self, quantum: SimDuration) {
        self.charge(quantum);
    }

    // ----- capability handles and completion queues (ABI edge) ----------

    /// Resolves a container entry into a capability handle for thread
    /// `tid`, performing the standard reachability check: the thread must
    /// be able to observe the entry's container and the container must
    /// hold a link to the object.  A thread can therefore never install a
    /// handle for an object it could not traverse to.
    pub fn handle_open(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<Handle, SyscallError> {
        // Handle installation is a ring operation, not a syscall: it is
        // not counted in `SyscallStats.syscalls`, but the reachability
        // check below performs (and counts) a real label check.
        let (header, body) = self.thread(tid)?;
        if body.state == ThreadState::Halted {
            return Err(SyscallError::ThreadHalted(tid));
        }
        let tl = header.label.clone();
        self.charge_boundary();
        self.check_entry(&tl, entry)?;
        self.dispatch_stats.handle_opens += 1;
        let handle = self.handles.entry(tid).or_default().install(entry);
        self.holders_note_install(entry.object, tid);
        Ok(handle)
    }

    /// Records one more live handle `tid` holds for `object`.
    fn holders_note_install(&mut self, object: ObjectId, tid: ObjectId) {
        *self
            .handle_holders
            .entry(object)
            .or_default()
            .entry(tid)
            .or_insert(0) += 1;
    }

    /// Releases `n` of the live handles `tid` held for `object`, dropping
    /// empty index entries so the map stays proportional to live holders.
    fn holders_release(&mut self, object: ObjectId, tid: ObjectId, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(holders) = self.handle_holders.get_mut(&object) {
            if let Some(count) = holders.get_mut(&tid) {
                *count = count.saturating_sub(n);
                if *count == 0 {
                    holders.remove(&tid);
                }
            }
            if holders.is_empty() {
                self.handle_holders.remove(&object);
            }
        }
    }

    /// Like [`Kernel::handle_open`], but reuses an already-installed live
    /// handle when `tid` holds one for exactly this entry, skipping the
    /// redundant reachability check (the installed handle is proof the
    /// check passed, and it is revoked the moment the link is severed).
    /// The fd hot path calls this on every descriptor operation, so the
    /// steady state costs one table probe instead of a label check.
    pub fn handle_open_reuse(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<Handle, SyscallError> {
        if let Some(h) = self.handles.get(&tid).and_then(|t| t.find(entry)) {
            self.dispatch_stats.handle_reuses += 1;
            return Ok(h);
        }
        self.handle_open(tid, entry)
    }

    /// Drops a handle from `tid`'s handle table.  Returns whether the
    /// handle was live.
    // flowcheck: exempt(drops an entry from the calling thread's own handle table; revoking your own capability observes nothing)
    pub fn handle_close(&mut self, tid: ObjectId, handle: Handle) -> bool {
        self.charge_boundary();
        self.dispatch_stats.handle_closes += 1;
        match self.handles.get_mut(&tid).and_then(|t| t.revoke(handle)) {
            Some(entry) => {
                self.holders_release(entry.object, tid, 1);
                true
            }
            None => false,
        }
    }

    /// The entry a handle currently resolves to for `tid`, if live.
    pub fn handle_entry(&self, tid: ObjectId, handle: Handle) -> Option<ContainerEntry> {
        self.handles.get(&tid).and_then(|t| t.resolve(handle))
    }

    /// Number of live handles installed for `tid`.
    pub fn handle_count(&self, tid: ObjectId) -> usize {
        self.handles.get(&tid).map_or(0, |t| t.len())
    }

    /// Revokes, across every thread, handles installed through exactly
    /// this severed container link.  Served from the holder index: only
    /// the threads actually holding a handle for this object are visited,
    /// so the sweep is O(holders), not O(threads) — with 10⁵ resident
    /// threads an unref touching nobody's handles costs one map probe.
    fn revoke_handles_for_entry(&mut self, entry: ContainerEntry) {
        let Some(holders) = self.handle_holders.get(&entry.object) else {
            return;
        };
        let tids: Vec<ObjectId> = holders.keys().copied().collect();
        for tid in tids {
            let revoked = self
                .handles
                .get_mut(&tid)
                .map_or(0, |t| t.revoke_entry(entry));
            self.dispatch_stats.handle_revocations += revoked as u64;
            // The thread may still hold handles for the same object
            // through a different link, so release only what was revoked.
            self.holders_release(entry.object, tid, revoked as u64);
        }
    }

    /// Revokes, across every thread, handles naming a deallocated object
    /// through any link.  O(holders), like the by-entry sweep.
    fn revoke_handles_for_object(&mut self, object: ObjectId) {
        let Some(holders) = self.handle_holders.remove(&object) else {
            return;
        };
        for tid in holders.keys() {
            if let Some(table) = self.handles.get_mut(tid) {
                self.dispatch_stats.handle_revocations += table.revoke_object(object) as u64;
            }
        }
    }

    /// Pushes a completion onto `tid`'s completion queue.  The thread is
    /// marked sched-dirty (if it is parked on an empty completion queue,
    /// the scheduler's next wake pass will find it without a scan) and its
    /// completion wake-state bit is set, so `wake_eligibility` never has
    /// to look at the queue itself.
    pub(crate) fn push_completion(&mut self, tid: ObjectId, completion: Completion) {
        self.sched_mark_dirty(tid);
        if let Ok((_, body)) = self.thread_mut(tid) {
            body.wake_flags |= WAKE_COMPLETION;
        }
        self.completions
            .entry(tid)
            .or_default()
            .push_back(completion);
    }

    // ----- readiness watches (blocking I/O) -----------------------------

    /// Registers a one-shot readiness watch for `tid` on the object named
    /// by `entry`.  When the object is next written (`segment_write`) or
    /// deallocated, the kernel pushes an [`CompletionKind::ObjectReady`]
    /// completion to `tid` — the wake half of blocking `read(2)`/`poll`.
    ///
    /// The watch is observe-checked: watching an object you cannot read
    /// would turn its write activity into a covert channel.
    pub fn sys_segment_watch(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        self.charge_syscall();
        let tl = self.thread_label(tid)?;
        self.check_entry(&tl, entry)?;
        self.check_observe(&tl, entry.object)?;
        let list = self.watchers.entry(entry.object).or_default();
        if !list.contains(&tid) {
            list.push(tid);
        }
        Ok(())
    }

    /// Wakes every watcher of `object` with an `ObjectReady` completion
    /// and clears the watch list (watches are one-shot).  Called on the
    /// success path of `segment_write` and on deallocation.
    fn notify_watchers(&mut self, object: ObjectId) {
        if let Some(list) = self.watchers.remove(&object) {
            for tid in list {
                if !self.objects.contains_key(&tid) {
                    continue; // the watcher died while parked
                }
                self.push_completion(
                    tid,
                    Completion {
                        user_data: KERNEL_USER_DATA,
                        kind: CompletionKind::ObjectReady { object },
                    },
                );
            }
        }
    }

    /// Number of threads currently watching `object` (test hook).
    pub fn watcher_count(&self, object: ObjectId) -> usize {
        self.watchers.get(&object).map_or(0, |l| l.len())
    }

    /// Whether `tid` has unreaped completions (scheduler wake condition: a
    /// thread blocked on an empty completion queue is woken when one
    /// arrives).
    pub fn completion_pending(&self, tid: ObjectId) -> bool {
        self.completions.get(&tid).is_some_and(|q| !q.is_empty())
    }

    /// Number of unreaped completions for `tid`.
    pub fn completion_count(&self, tid: ObjectId) -> usize {
        self.completions.get(&tid).map_or(0, |q| q.len())
    }

    /// Removes and returns `tid`'s oldest unreaped completion.
    pub fn reap_completion(&mut self, tid: ObjectId) -> Option<Completion> {
        let taken = self.completions.get_mut(&tid).and_then(|q| q.pop_front());
        if taken.is_some() && !self.completion_pending(tid) {
            self.clear_wake_flag(tid, WAKE_COMPLETION);
        }
        taken
    }

    /// Removes and returns all of `tid`'s unreaped completions, oldest
    /// first.
    pub fn reap_completions(&mut self, tid: ObjectId) -> Vec<Completion> {
        let taken: Vec<Completion> = self
            .completions
            .get_mut(&tid)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        if !taken.is_empty() {
            self.clear_wake_flag(tid, WAKE_COMPLETION);
        }
        taken
    }

    /// Clears a wake-state bit once the matching queue drained.
    fn clear_wake_flag(&mut self, tid: ObjectId, flag: u8) {
        if let Ok((_, body)) = self.thread_mut(tid) {
            body.wake_flags &= !flag;
        }
    }

    // ----- the single-level store and persist records -------------------

    /// Attaches the machine's single-level store.  From here on the
    /// persist-record syscalls are live; without a store they fail with
    /// [`SyscallError::NoStore`].
    pub fn attach_store(&mut self, store: SingleLevelStore) {
        let mut store = store;
        store.set_recorder(self.recorder.clone());
        self.store = Some(store);
    }

    /// Detaches and returns the store (crash simulation: the machine keeps
    /// the disk, the kernel's memory is lost).
    pub fn take_store(&mut self) -> Option<SingleLevelStore> {
        self.store.take()
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&SingleLevelStore> {
        self.store.as_ref()
    }

    /// The attached store, mutably.
    pub fn store_mut(&mut self) -> Option<&mut SingleLevelStore> {
        self.store.as_mut()
    }

    /// Upper bound on one persist record's payload (a record is one
    /// B+-tree value; file data is split into extents far below this).
    pub const PERSIST_RECORD_MAX: u64 = 16 * 1024 * 1024;

    /// Frames a persist record for the store: label, then length-prefixed
    /// payload.  The label rides inside the record so that every access
    /// after a crash re-checks exactly what was protected before it.
    fn persist_frame(label: &Label, payload: &[u8]) -> Vec<u8> {
        let mut e = Encoder::new();
        crate::serialize::encode_label(&mut e, label);
        e.put_bytes(payload);
        e.finish()
    }

    fn persist_unframe(key: u64, bytes: &[u8]) -> Result<(Label, Vec<u8>), SyscallError> {
        let mut d = Decoder::new(bytes);
        let label =
            crate::serialize::decode_label(&mut d).map_err(|_| SyscallError::CorruptRecord(key))?;
        let payload = d
            .get_bytes()
            .map_err(|_| SyscallError::CorruptRecord(key))?;
        Ok((label, payload))
    }

    /// Reads a record's raw framed bytes, or `None` if absent.
    fn persist_record(&mut self, key: u64) -> Result<Option<Vec<u8>>, SyscallError> {
        let store = self.store.as_mut().ok_or(SyscallError::NoStore)?;
        if !store.contains(key) {
            return Ok(None);
        }
        store
            .get(key)
            .map(Some)
            .map_err(|_| SyscallError::CorruptRecord(key))
    }

    /// "No read up" for persist records: record labels are immutable, so
    /// the comparison is memoizable exactly like a segment's.
    fn check_record_observe(
        &mut self,
        tl: &Label,
        key: u64,
        rlabel: &Label,
    ) -> Result<(), SyscallError> {
        self.count_label_check(rlabel, tl, true);
        if rlabel.leq_high_rhs(tl) {
            Ok(())
        } else {
            Err(SyscallError::CannotObserveRecord(key))
        }
    }

    /// "No write down" for persist records.
    fn check_record_modify(
        &mut self,
        tl: &Label,
        key: u64,
        rlabel: &Label,
    ) -> Result<(), SyscallError> {
        self.count_label_check(rlabel, tl, true);
        if tl.leq(rlabel) && rlabel.leq_high_rhs(tl) {
            Ok(())
        } else {
            Err(SyscallError::CannotModifyRecord(key))
        }
    }

    /// Creates or updates a labeled record in the persist namespace.
    ///
    /// An existing record keeps its (immutable) label — the caller must
    /// pass the modify check against it; `offset`/`data` splice into the
    /// payload, growing it (zero-filled) as needed.  A new record takes
    /// `label`, validated by the allocation rule `L_T ⊑ L ⊑ C_T`.
    pub fn sys_persist_put(
        &mut self,
        tid: ObjectId,
        key: u64,
        label: Option<Label>,
        offset: u64,
        data: &[u8],
    ) -> Result<(), SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            if !is_persist_key(key) {
                return Err(SyscallError::InvalidArgument(
                    "key outside the persist record namespace",
                ));
            }
            let end = offset
                .checked_add(data.len() as u64)
                .filter(|&e| e <= Self::PERSIST_RECORD_MAX)
                .ok_or(SyscallError::InvalidArgument(
                    "persist record write out of range",
                ))?;
            let (rlabel, mut payload) = match self.persist_record(key)? {
                Some(bytes) => {
                    let (rlabel, payload) = Self::persist_unframe(key, &bytes)?;
                    self.check_record_modify(&tl, key, &rlabel)?;
                    (rlabel, payload)
                }
                None => {
                    let label = label.ok_or(SyscallError::InvalidArgument(
                        "creating a persist record requires a label",
                    ))?;
                    if label.contains_star() {
                        return Err(SyscallError::OwnershipNotAllowed(ObjectType::Segment));
                    }
                    tl.can_allocate(&tc, &label)?;
                    (label, Vec::new())
                }
            };
            if end as usize > payload.len() {
                payload.resize(end as usize, 0);
            }
            payload[offset as usize..end as usize].copy_from_slice(data);
            let copy_cost = self.cost.copy(data.len() as u64);
            self.charge(copy_cost);
            let framed = Self::persist_frame(&rlabel, &payload);
            self.store
                .as_mut()
                .expect("persist_record verified the store")
                .put(key, framed);
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Reads bytes out of a persist record (label-checked against the
    /// label stored *in* the record — the check a tainted reader fails
    /// even after the record was recovered from the write-ahead log).
    /// `len == u64::MAX` reads to the end of the payload.
    pub fn sys_persist_read(
        &mut self,
        tid: ObjectId,
        key: u64,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<Vec<u8>, SyscallError> {
            let bytes = self
                .persist_record(key)?
                .ok_or(SyscallError::NoSuchRecord(key))?;
            let (rlabel, payload) = Self::persist_unframe(key, &bytes)?;
            self.check_record_observe(&tl, key, &rlabel)?;
            if offset > payload.len() as u64 {
                return Err(SyscallError::InvalidArgument("read beyond end of record"));
            }
            let end = if len == u64::MAX {
                payload.len() as u64
            } else {
                offset
                    .checked_add(len)
                    .filter(|&e| e <= payload.len() as u64)
                    .ok_or(SyscallError::InvalidArgument("read beyond end of record"))?
            };
            let copy_cost = self.cost.copy(end - offset);
            self.charge(copy_cost);
            Ok(payload[offset as usize..end as usize].to_vec())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Removes a persist record (modify-checked against its label).  The
    /// deletion becomes durable at the next sync of the key or the next
    /// checkpoint.
    pub fn sys_persist_delete(&mut self, tid: ObjectId, key: u64) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            let bytes = self
                .persist_record(key)?
                .ok_or(SyscallError::NoSuchRecord(key))?;
            let (rlabel, _) = Self::persist_unframe(key, &bytes)?;
            self.check_record_modify(&tl, key, &rlabel)?;
            self.store
                .as_mut()
                .expect("persist_record verified the store")
                .delete(key);
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Range-scans the persist namespace, returning `(key, payload)` for
    /// every record in `[lo, hi)` whose label the calling thread may
    /// observe (at most `max` of them).  Records the thread may not
    /// observe are skipped, never partially revealed; keys below the
    /// persist namespace are unreachable through this call by
    /// construction.
    pub fn sys_persist_scan(
        &mut self,
        tid: ObjectId,
        lo: u64,
        hi: u64,
        max: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<Vec<(u64, Vec<u8>)>, SyscallError> {
            let store = self.store.as_mut().ok_or(SyscallError::NoStore)?;
            let lo = lo.max(histar_store::PERSIST_KEY_BASE);
            let keys = store.keys_in_range(lo, hi);
            let mut raw = Vec::with_capacity(keys.len());
            for key in keys {
                match store.get(key) {
                    Ok(bytes) => raw.push((key, bytes)),
                    Err(_) => return Err(SyscallError::CorruptRecord(key)),
                }
            }
            let mut out = Vec::new();
            let mut copied = 0u64;
            for (key, bytes) in raw {
                if out.len() as u64 >= max {
                    break;
                }
                let (rlabel, payload) = Self::persist_unframe(key, &bytes)?;
                if self.check_record_observe(&tl, key, &rlabel).is_err() {
                    continue;
                }
                copied += payload.len() as u64;
                out.push((key, payload));
            }
            let copy_cost = self.cost.copy(copied);
            self.charge(copy_cost);
            Ok(out)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Makes the named records durable: one sequential write-ahead-log
    /// append per record (§7.1's `fsync` path), batched and applied by the
    /// store.  A key with no record logs a durable *deletion*, so an
    /// unlink followed by a sync cannot resurrect after a crash.
    pub fn sys_persist_sync(&mut self, tid: ObjectId, keys: &[u64]) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            for &key in keys {
                if !is_persist_key(key) {
                    return Err(SyscallError::InvalidArgument(
                        "key outside the persist record namespace",
                    ));
                }
                match self.persist_record(key)? {
                    Some(bytes) => {
                        let (rlabel, _) = Self::persist_unframe(key, &bytes)?;
                        self.check_record_observe(&tl, key, &rlabel)?;
                        self.store
                            .as_mut()
                            .expect("persist_record verified the store")
                            .sync_object(key);
                    }
                    None => self
                        .store
                        .as_mut()
                        .expect("persist_record verified the store")
                        .sync_delete(key),
                }
            }
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// The label a persist record carries.  Like `obj_get_label`, the
    /// label itself is metadata a caller needs in order to make labeling
    /// decisions (e.g. labeling new extents of an existing file), not
    /// protected content.
    // flowcheck: exempt(reads only the record's label, which is the metadata needed to decide labeling; payload stays sealed)
    pub fn sys_persist_get_label(
        &mut self,
        tid: ObjectId,
        key: u64,
    ) -> Result<Label, SyscallError> {
        self.calling_thread(tid)?;
        let result = (|| -> Result<Label, SyscallError> {
            let bytes = self
                .persist_record(key)?
                .ok_or(SyscallError::NoSuchRecord(key))?;
            let (rlabel, _) = Self::persist_unframe(key, &bytes)?;
            Ok(rlabel)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    fn count_label_check(&mut self, a: &Label, b: &Label, immutable: bool) {
        self.stats.label_checks += 1;
        let cached = if immutable {
            // Memoize comparisons between immutable labels (§4).
            let ia = self.label_cache.intern(a);
            let ib = self.label_cache.intern(b);
            let before = self.label_cache.stats().hits;
            let _ = self.label_cache.leq_high_rhs(ia, ib);
            self.label_cache.stats().hits > before
        } else {
            false
        };
        if cached {
            self.stats.label_cache_hits += 1;
        }
        let c = self.cost.label_check(a.len() + b.len(), cached);
        self.charge(c);
    }

    /// "No read up": may a thread labelled `tl` observe object `o`?
    fn check_observe(&mut self, tl: &Label, oid: ObjectId) -> Result<(), SyscallError> {
        let (olabel, immutable) = {
            let o = self.obj(oid)?;
            (
                o.header.label.clone(),
                o.header.object_type != ObjectType::Thread,
            )
        };
        self.count_label_check(&olabel, tl, immutable);
        if olabel.leq_high_rhs(tl) {
            Ok(())
        } else {
            Err(SyscallError::CannotObserve(oid))
        }
    }

    /// "No write down": may a thread labelled `tl` modify object `o`?
    fn check_modify(&mut self, tl: &Label, oid: ObjectId) -> Result<(), SyscallError> {
        let (olabel, immutable_flag, otype) = {
            let o = self.obj(oid)?;
            (
                o.header.label.clone(),
                o.header.flags.immutable,
                o.header.object_type,
            )
        };
        if immutable_flag {
            return Err(SyscallError::Immutable(oid));
        }
        self.count_label_check(&olabel, tl, otype != ObjectType::Thread);
        if tl.leq(&olabel) && olabel.leq_high_rhs(tl) {
            Ok(())
        } else {
            Err(SyscallError::CannotModify(oid))
        }
    }

    /// Verifies a container entry `⟨D, O⟩`: the thread must be able to read
    /// `D`, and `D` must hold a link to `O` (or `O == D`, since every
    /// container contains itself).
    fn check_entry(&mut self, tl: &Label, entry: ContainerEntry) -> Result<(), SyscallError> {
        self.check_observe(tl, entry.container)?;
        if entry.container == entry.object {
            // ⟨D, D⟩ is always valid once D is readable.
            self.typed(entry.container, ObjectType::Container)?;
            return Ok(());
        }
        let (_, cbody) = self.container(entry.container)?;
        if !cbody.contains(entry.object) {
            return Err(SyscallError::NotInContainer {
                container: entry.container,
                object: entry.object,
            });
        }
        Ok(())
    }

    /// Validates the label of a to-be-created object and the container it
    /// will live in, then inserts it, charging quota.
    #[allow(clippy::too_many_arguments)]
    fn create_object(
        &mut self,
        tl: &Label,
        tc: &Label,
        container: ObjectId,
        label: Label,
        quota: u64,
        descrip: &str,
        body: ObjectBody,
    ) -> Result<ObjectId, SyscallError> {
        let otype = body.object_type();
        // Only thread and gate labels may contain ⋆.
        if !otype.may_own_categories() && label.contains_star() {
            return Err(SyscallError::OwnershipNotAllowed(otype));
        }
        // The creating thread must be able to write the container...
        self.check_modify(tl, container)?;
        // ...and allocate at this label: L_T ⊑ L ⊑ C_T.
        tl.can_allocate(tc, &label)?;
        // The container hierarchy may forbid this object type.
        let (cheader, cbody) = self.container(container)?;
        if !cbody.allows_type(otype) {
            return Err(SyscallError::TypeForbidden(otype));
        }
        let avoid = cbody.avoid_types;
        // Quota check.
        let available = cheader.quota_remaining();
        if quota != QUOTA_INFINITE && available != QUOTA_INFINITE && quota > available {
            return Err(SyscallError::QuotaExceeded {
                container,
                requested: quota,
                available,
            });
        }
        if quota == QUOTA_INFINITE {
            return Err(SyscallError::InvalidArgument(
                "only the root container has an infinite quota",
            ));
        }

        let id = self.fresh_id();
        let mut header = ObjectHeader::new(id, otype, label, quota, descrip);
        header.usage = body.storage_bytes();
        header.links = 1;
        self.objects.insert(id, KObject { header, body });

        // Charge the container.
        let parent_container = container;
        {
            let cobj = self.obj_mut(parent_container)?;
            cobj.header.usage += quota;
            match &mut cobj.body {
                ObjectBody::Container(c) => c.link(id),
                _ => unreachable!("container() checked the type"),
            }
        }
        // New containers inherit the avoid mask and record their parent.
        if let Ok(o) = self.obj_mut(id) {
            if let ObjectBody::Container(c) = &mut o.body {
                c.parent = Some(parent_container);
                c.avoid_types |= avoid;
            }
        }
        self.stats.objects_created += 1;
        Ok(id)
    }

    /// Removes an object once its last hard link disappears; containers drop
    /// their whole subtree.
    fn dealloc(&mut self, id: ObjectId) {
        let Some(obj) = self.objects.remove(&id) else {
            return;
        };
        self.stats.objects_deallocated += 1;
        self.revoke_handles_for_object(id);
        // Threads watching this object wake (reads see EOF / a dead fd
        // rather than sleeping forever), and the scheduler gets a chance
        // to retire the object if it was itself a parked thread.
        self.notify_watchers(id);
        self.sched_mark_dirty(id);
        if obj.header.object_type == ObjectType::Thread {
            // A dead thread's ABI-edge state dies with it — including its
            // slots in the holder index, or the index would pin ghost
            // threads forever.
            if let Some(table) = self.handles.remove(&id) {
                for (object, count) in table.live_holdings() {
                    self.holders_release(object, id, count);
                }
            }
            self.completions.remove(&id);
            self.per_thread_syscalls.remove(&id);
        }
        if let ObjectBody::Container(c) = obj.body {
            for child in c.links {
                if let Some(child_obj) = self.objects.get_mut(&child) {
                    child_obj.header.links = child_obj.header.links.saturating_sub(1);
                    if child_obj.header.links == 0 {
                        self.dealloc(child);
                    }
                }
            }
        }
    }

    // ----- categories and thread labels (§3.1) --------------------------

    /// `cat_t create_category(void)`: allocates a fresh category, granting
    /// the calling thread ownership (`⋆`) and clearance `3` in it.
    // flowcheck: exempt(allocates a fresh category owned by the caller; touches only the caller's own label and clearance)
    pub fn sys_create_category(&mut self, tid: ObjectId) -> Result<Category, SyscallError> {
        let (label, clearance) = self.calling_thread(tid)?;
        let cat = self.categories.alloc();
        let new_label = label.with(cat, Level::Star);
        let new_clearance = clearance.with(cat, Level::L3);
        let (header, body) = self.thread_mut(tid)?;
        header.label = new_label;
        body.clearance = new_clearance;
        Ok(cat)
    }

    /// `self_set_label(L)`: sets the calling thread's label, subject to
    /// `L_T ⊑ L ⊑ C_T`.
    pub fn sys_self_set_label(&mut self, tid: ObjectId, new: Label) -> Result<(), SyscallError> {
        let (label, clearance) = self.calling_thread(tid)?;
        self.stats.label_checks += 2;
        let c = self.cost.label_check(label.len() + new.len(), false);
        self.charge(c);
        if let Err(e) = label.check_set_label(&clearance, &new) {
            self.stats.errors += 1;
            return Err(e.into());
        }
        let (header, _) = self.thread_mut(tid)?;
        header.label = new;
        Ok(())
    }

    /// `self_set_clearance(C)`: sets the calling thread's clearance, subject
    /// to `L_T ⊑ C ⊑ (C_T ⊔ L_T^J)`.
    pub fn sys_self_set_clearance(
        &mut self,
        tid: ObjectId,
        new: Label,
    ) -> Result<(), SyscallError> {
        let (label, clearance) = self.calling_thread(tid)?;
        self.stats.label_checks += 2;
        let c = self.cost.label_check(clearance.len() + new.len(), false);
        self.charge(c);
        if let Err(e) = label.check_set_clearance(&clearance, &new) {
            self.stats.errors += 1;
            return Err(e.into());
        }
        let (_, body) = self.thread_mut(tid)?;
        body.clearance = new;
        Ok(())
    }

    /// Returns the calling thread's own label.
    // flowcheck: exempt(returns the calling thread's own label; self-observation leaks nothing)
    pub fn sys_self_get_label(&mut self, tid: ObjectId) -> Result<Label, SyscallError> {
        let (label, _) = self.calling_thread(tid)?;
        Ok(label)
    }

    /// Returns the calling thread's own clearance.
    // flowcheck: exempt(returns the calling thread's own clearance; self-observation leaks nothing)
    pub fn sys_self_get_clearance(&mut self, tid: ObjectId) -> Result<Label, SyscallError> {
        let (_, clearance) = self.calling_thread(tid)?;
        Ok(clearance)
    }

    // ----- containers and quotas (§3.2, §3.3) ----------------------------

    /// `container_create(D, L, descrip, avoid_types, quota)`.
    pub fn sys_container_create(
        &mut self,
        tid: ObjectId,
        parent: ObjectId,
        label: Label,
        descrip: &str,
        avoid_types: u8,
        quota: u64,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let body = ObjectBody::Container(ContainerBody::with_links(
            Vec::new(),
            Some(parent),
            avoid_types,
        ));
        self.create_object(&tl, &tc, parent, label, quota, descrip, body)
            .inspect_err(|_| self.stats.errors += 1)
    }

    /// Unreferences an object from a container; the object is deallocated
    /// when its last link disappears (recursively for containers).
    pub fn sys_obj_unref(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        if entry.object == self.root {
            self.stats.errors += 1;
            return Err(SyscallError::RootContainer);
        }
        let result = (|| -> Result<(), SyscallError> {
            self.check_modify(&tl, entry.container)?;
            let quota = self.obj(entry.object)?.header.quota;
            {
                let cobj = self.obj_mut(entry.container)?;
                let unlinked = match &mut cobj.body {
                    ObjectBody::Container(c) => c.unlink(entry.object),
                    _ => {
                        return Err(SyscallError::WrongType {
                            found: cobj.header.object_type,
                            expected: ObjectType::Container,
                        })
                    }
                };
                if !unlinked {
                    return Err(SyscallError::NotInContainer {
                        container: entry.container,
                        object: entry.object,
                    });
                }
                cobj.header.usage = cobj.header.usage.saturating_sub(quota);
            }
            let remaining = {
                let o = self.obj_mut(entry.object)?;
                o.header.links = o.header.links.saturating_sub(1);
                o.header.links
            };
            // The link is severed: every capability handle installed
            // through it is revoked, so no thread can keep naming the
            // object along a path that no longer exists.
            self.revoke_handles_for_entry(entry);
            if remaining == 0 {
                self.dealloc(entry.object);
            }
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Adds an additional hard link to an object (`⟨D_src, O⟩` into `D_dst`).
    ///
    /// The thread must be able to write `D_dst`, its clearance must admit
    /// the object's label, and the object's quota must be fixed (§3.3).
    pub fn sys_hard_link(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        dst: ObjectId,
    ) -> Result<(), SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, entry)?;
            self.check_modify(&tl, dst)?;
            let (olabel, quota, fixed) = {
                let o = self.obj(entry.object)?;
                (
                    o.header.label.clone(),
                    o.header.quota,
                    o.header.flags.fixed_quota,
                )
            };
            if !fixed {
                return Err(SyscallError::QuotaNotFixed(entry.object));
            }
            // Clearance must be high enough to allocate at the object's
            // label: L_S ⊑ C_T.
            self.stats.label_checks += 1;
            if !olabel.leq(&tc) {
                return Err(SyscallError::Label(
                    histar_label::LabelError::LabelExceedsClearance,
                ));
            }
            // Double-charge the object's quota to the destination container.
            let (dheader, _) = self.container(dst)?;
            let available = dheader.quota_remaining();
            if available != QUOTA_INFINITE && quota > available {
                return Err(SyscallError::QuotaExceeded {
                    container: dst,
                    requested: quota,
                    available,
                });
            }
            {
                let dobj = self.obj_mut(dst)?;
                dobj.header.usage += quota;
                match &mut dobj.body {
                    ObjectBody::Container(c) => c.link(entry.object),
                    _ => unreachable!("container() checked the type"),
                }
            }
            self.obj_mut(entry.object)?.header.links += 1;
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Returns a container's spare quota (`quota - usage`), or `u64::MAX`
    /// for the root container.  Requires observe access, since the answer
    /// reveals information about the container's contents.
    pub fn sys_container_quota_avail(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
    ) -> Result<u64, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<u64, SyscallError> {
            self.check_observe(&tl, container)?;
            let (header, _) = self.container(container)?;
            Ok(header.quota_remaining())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// `container_get_parent(D)`: the parent container of `D`.
    pub fn sys_container_get_parent(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<ObjectId, SyscallError> {
            self.check_observe(&tl, container)?;
            let (_, body) = self.container(container)?;
            body.parent.ok_or(SyscallError::RootContainer)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Lists the object IDs linked into a container (requires read access).
    pub fn sys_container_list(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
    ) -> Result<Vec<ObjectId>, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<Vec<ObjectId>, SyscallError> {
            self.check_observe(&tl, container)?;
            let (_, body) = self.container(container)?;
            Ok(body.links.clone())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// `quota_move(D, O, n)`: moves `n` bytes of quota from container `D`
    /// to object `O` (or back, for negative `n`).
    pub fn sys_quota_move(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        object: ObjectId,
        n: i64,
    ) -> Result<(), SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_modify(&tl, container)?;
            let (_, cbody) = self.container(container)?;
            if !cbody.contains(object) {
                return Err(SyscallError::NotInContainer { container, object });
            }
            // L_T ⊑ L_O ⊑ C_T.
            let olabel = self.obj(object)?.header.label.clone();
            self.stats.label_checks += 2;
            tl.can_allocate(&tc, &olabel)?;
            let (fixed, oquota, ousage) = {
                let o = self.obj(object)?;
                (o.header.flags.fixed_quota, o.header.quota, o.header.usage)
            };
            if fixed {
                return Err(SyscallError::QuotaFixed(object));
            }
            if n >= 0 {
                let n = n as u64;
                let (cheader, _) = self.container(container)?;
                let available = cheader.quota_remaining();
                if available != QUOTA_INFINITE && n > available {
                    return Err(SyscallError::QuotaExceeded {
                        container,
                        requested: n,
                        available,
                    });
                }
                self.obj_mut(object)?.header.quota = oquota.saturating_add(n);
                let c = self.obj_mut(container)?;
                if c.header.quota != QUOTA_INFINITE {
                    c.header.usage += n;
                } else {
                    c.header.usage = c.header.usage.saturating_add(n);
                }
            } else {
                let take = n.unsigned_abs();
                // Returning quota reveals whether O has |n| spare bytes, so
                // the caller must also be able to observe O.
                self.check_observe(&tl, object)?;
                if oquota.saturating_sub(ousage) < take {
                    return Err(SyscallError::QuotaUnderflow(object));
                }
                self.obj_mut(object)?.header.quota = oquota - take;
                let c = self.obj_mut(container)?;
                c.header.usage = c.header.usage.saturating_sub(take);
            }
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    // ----- object metadata ------------------------------------------------

    /// Reads an object's label through a container entry.
    ///
    /// For non-thread objects, readability of the container suffices; for
    /// threads, the caller must additionally satisfy `L_{T'}^J ⊑ L_T^J`.
    pub fn sys_obj_get_label(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<Label, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<Label, SyscallError> {
            self.check_entry(&tl, entry)?;
            let o = self.obj(entry.object)?;
            let label = o.header.label.clone();
            if o.header.object_type == ObjectType::Thread {
                self.stats.label_checks += 1;
                if !label.leq_high_both(&tl) {
                    return Err(SyscallError::CannotObserve(entry.object));
                }
            }
            Ok(label)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Reads an object's descriptive string and type through a container
    /// entry.
    pub fn sys_obj_get_info(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(ObjectType, String, u64), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(ObjectType, String, u64), SyscallError> {
            self.check_entry(&tl, entry)?;
            let o = self.obj(entry.object)?;
            Ok((
                o.header.object_type,
                o.header.descrip.clone(),
                o.header.quota,
            ))
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Reads an object's 64-byte metadata area (requires observe).
    pub fn sys_obj_get_metadata(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<[u8; METADATA_LEN], SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<[u8; METADATA_LEN], SyscallError> {
            self.check_entry(&tl, entry)?;
            self.check_observe(&tl, entry.object)?;
            Ok(self.obj(entry.object)?.header.metadata)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Writes an object's 64-byte metadata area (requires modify).
    pub fn sys_obj_set_metadata(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        metadata: [u8; METADATA_LEN],
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, entry)?;
            self.check_modify(&tl, entry.object)?;
            self.obj_mut(entry.object)?.header.metadata = metadata;
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Irrevocably marks an object immutable (requires modify first).
    pub fn sys_obj_set_immutable(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, entry)?;
            self.check_modify(&tl, entry.object)?;
            self.obj_mut(entry.object)?.header.flags.immutable = true;
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Irrevocably fixes an object's quota so it may be hard-linked into
    /// additional containers.
    pub fn sys_obj_set_fixed_quota(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, entry)?;
            self.check_modify(&tl, entry.object)?;
            self.obj_mut(entry.object)?.header.flags.fixed_quota = true;
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    // ----- segments --------------------------------------------------------

    /// Creates a segment of `len` zero bytes in `container`.
    pub fn sys_segment_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        len: u64,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        // Zeroing freshly allocated pages is charged explicitly; HiStar has
        // no pre-zeroed page pool (§7.1).
        let pages = len.div_ceil(PAGE_SIZE);
        let zero_cost = self.cost.page_zero * pages;
        self.charge(zero_cost);
        let quota = (len.max(1)).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let body = ObjectBody::Segment(SegmentBody::zeroed(len as usize));
        self.create_object(&tl, &tc, container, label, quota, descrip, body)
            .inspect_err(|_| self.stats.errors += 1)
    }

    /// Resizes a segment (zero-filling growth), within its quota.
    pub fn sys_segment_resize(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        len: u64,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, entry)?;
            self.check_modify(&tl, entry.object)?;
            let grow_pages;
            {
                let o = self.obj_mut(entry.object)?;
                let quota = o.header.quota;
                match &mut o.body {
                    ObjectBody::Segment(s) => {
                        if len > quota {
                            return Err(SyscallError::QuotaExceeded {
                                container: entry.container,
                                requested: len,
                                available: quota,
                            });
                        }
                        let old = s.len() as u64;
                        grow_pages = len.saturating_sub(old).div_ceil(PAGE_SIZE);
                        s.resize(len as usize);
                        o.header.usage = len;
                    }
                    _ => {
                        return Err(SyscallError::WrongType {
                            found: o.header.object_type,
                            expected: ObjectType::Segment,
                        })
                    }
                }
            }
            let zero_cost = self.cost.page_zero * grow_pages;
            self.charge(zero_cost);
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Reads bytes from a segment (models a load through a mapping; the same
    /// label checks as a read page fault apply).
    pub fn sys_segment_read(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<Vec<u8>, SyscallError> {
            let local = self.thread(tid)?.1.local_segment;
            if local != Some(entry.object) {
                self.check_entry(&tl, entry)?;
                self.check_observe(&tl, entry.object)?;
            }
            let copy_cost = self.cost.copy(len);
            self.charge(copy_cost);
            let o = self.obj(entry.object)?;
            match &o.body {
                ObjectBody::Segment(s) => {
                    let start = offset as usize;
                    let end = (offset + len) as usize;
                    if end > s.len() {
                        return Err(SyscallError::InvalidArgument("read beyond end of segment"));
                    }
                    Ok(s.bytes[start..end].to_vec())
                }
                _ => Err(SyscallError::WrongType {
                    found: o.header.object_type,
                    expected: ObjectType::Segment,
                }),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Writes bytes into a segment (models a store through a mapping).
    ///
    /// The calling thread's local segment is always writable by that thread,
    /// regardless of its current taint (§3.4).
    pub fn sys_segment_write(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        offset: u64,
        data: &[u8],
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            let local = self.thread(tid)?.1.local_segment;
            if local != Some(entry.object) {
                self.check_entry(&tl, entry)?;
                self.check_modify(&tl, entry.object)?;
            }
            let copy_cost = self.cost.copy(data.len() as u64);
            self.charge(copy_cost);
            let o = self.obj_mut(entry.object)?;
            let quota = o.header.quota;
            match &mut o.body {
                ObjectBody::Segment(s) => {
                    let end = offset + data.len() as u64;
                    if end > quota {
                        return Err(SyscallError::QuotaExceeded {
                            container: entry.container,
                            requested: end,
                            available: quota,
                        });
                    }
                    if end as usize > s.len() {
                        s.resize(end as usize);
                        o.header.usage = end;
                    }
                    s.bytes[offset as usize..end as usize].copy_from_slice(data);
                    Ok(())
                }
                _ => Err(SyscallError::WrongType {
                    found: o.header.object_type,
                    expected: ObjectType::Segment,
                }),
            }
        })();
        if result.is_ok() {
            // Readiness: wake anyone parked waiting for this segment to
            // make progress (blocked pipe/socket readers and pollers).
            self.notify_watchers(entry.object);
        }
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Returns the length of a segment (requires observe).
    pub fn sys_segment_len(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<u64, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<u64, SyscallError> {
            let local = self.thread(tid)?.1.local_segment;
            if local != Some(entry.object) {
                self.check_entry(&tl, entry)?;
                self.check_observe(&tl, entry.object)?;
            }
            let o = self.obj(entry.object)?;
            match &o.body {
                ObjectBody::Segment(s) => Ok(s.len() as u64),
                _ => Err(SyscallError::WrongType {
                    found: o.header.object_type,
                    expected: ObjectType::Segment,
                }),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Copies a segment into `dst_container` under a (possibly different)
    /// label — the "efficient copies with different labels" of §3, used for
    /// taint-forking address spaces and segments.
    pub fn sys_segment_copy(
        &mut self,
        tid: ObjectId,
        src: ContainerEntry,
        dst_container: ObjectId,
        label: Label,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<ObjectId, SyscallError> {
            self.check_entry(&tl, src)?;
            self.check_observe(&tl, src.object)?;
            let bytes = {
                let o = self.obj(src.object)?;
                match &o.body {
                    ObjectBody::Segment(s) => s.bytes.clone(),
                    _ => {
                        return Err(SyscallError::WrongType {
                            found: o.header.object_type,
                            expected: ObjectType::Segment,
                        })
                    }
                }
            };
            let pages = (bytes.len() as u64).div_ceil(PAGE_SIZE);
            let copy_cost = self.cost.page_copy * pages;
            self.charge(copy_cost);
            let quota = (bytes.len().max(1) as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let body = ObjectBody::Segment(SegmentBody { bytes });
            self.create_object(&tl, &tc, dst_container, label, quota, descrip, body)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    // ----- address spaces (§3.4) -------------------------------------------

    /// Creates an empty address space.
    pub fn sys_as_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let body = ObjectBody::AddressSpace(AddressSpaceBody::default());
        self.create_object(&tl, &tc, container, label, PAGE_SIZE, descrip, body)
            .inspect_err(|_| self.stats.errors += 1)
    }

    /// Copies an address space (and its mapping list) under a new label —
    /// used when a tainted thread forks a writable copy of its environment.
    pub fn sys_as_copy(
        &mut self,
        tid: ObjectId,
        src: ContainerEntry,
        dst_container: ObjectId,
        label: Label,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<ObjectId, SyscallError> {
            self.check_entry(&tl, src)?;
            self.check_observe(&tl, src.object)?;
            let mappings = {
                let o = self.obj(src.object)?;
                match &o.body {
                    ObjectBody::AddressSpace(a) => a.mappings.clone(),
                    _ => {
                        return Err(SyscallError::WrongType {
                            found: o.header.object_type,
                            expected: ObjectType::AddressSpace,
                        })
                    }
                }
            };
            let body = ObjectBody::AddressSpace(AddressSpaceBody { mappings });
            self.create_object(&tl, &tc, dst_container, label, PAGE_SIZE, descrip, body)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Adds (or replaces) a mapping in an address space.
    pub fn sys_as_map(
        &mut self,
        tid: ObjectId,
        aspace: ContainerEntry,
        mapping: Mapping,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, aspace)?;
            self.check_modify(&tl, aspace.object)?;
            if !mapping.va.is_multiple_of(PAGE_SIZE) {
                return Err(SyscallError::InvalidArgument("va must be page-aligned"));
            }
            let o = self.obj_mut(aspace.object)?;
            match &mut o.body {
                ObjectBody::AddressSpace(a) => {
                    a.map(mapping);
                    Ok(())
                }
                _ => Err(SyscallError::WrongType {
                    found: o.header.object_type,
                    expected: ObjectType::AddressSpace,
                }),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Removes a mapping from an address space.
    pub fn sys_as_unmap(
        &mut self,
        tid: ObjectId,
        aspace: ContainerEntry,
        va: u64,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, aspace)?;
            self.check_modify(&tl, aspace.object)?;
            let o = self.obj_mut(aspace.object)?;
            match &mut o.body {
                ObjectBody::AddressSpace(a) => {
                    a.unmap(va);
                    Ok(())
                }
                _ => Err(SyscallError::WrongType {
                    found: o.header.object_type,
                    expected: ObjectType::AddressSpace,
                }),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// `self_set_as`: switches the calling thread to a different address
    /// space.
    pub fn sys_self_set_as(
        &mut self,
        tid: ObjectId,
        aspace: ContainerEntry,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, aspace)?;
            // Using an address space requires observing it.
            self.check_observe(&tl, aspace.object)?;
            self.typed(aspace.object, ObjectType::AddressSpace)?;
            self.account_context_switch(Some(aspace));
            let (_, body) = self.thread_mut(tid)?;
            body.address_space = Some(aspace);
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    fn account_context_switch(&mut self, new_as: Option<ContainerEntry>) {
        self.stats.context_switches += 1;
        let cost = if new_as.is_some() && new_as == self.last_address_space {
            self.stats.invlpg_switches += 1;
            self.cost.context_switch_invlpg
        } else {
            self.cost.context_switch_full
        };
        self.charge(cost);
        self.last_address_space = new_as;
    }

    /// Simulates a memory access by the thread at virtual address `va`,
    /// walking its address space exactly as the page-fault handler would.
    pub fn sys_page_fault(
        &mut self,
        tid: ObjectId,
        va: u64,
        write: bool,
    ) -> Result<PageFaultResolution, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        self.stats.page_faults += 1;
        let fault_cost = self.cost.page_fault;
        self.charge(fault_cost);
        let result = (|| -> Result<PageFaultResolution, SyscallError> {
            let aspace_entry = self
                .thread(tid)?
                .1
                .address_space
                .ok_or(SyscallError::PageFault { va, write })?;
            self.check_observe(&tl, aspace_entry.object)?;
            let mapping = {
                let o = self.obj(aspace_entry.object)?;
                match &o.body {
                    ObjectBody::AddressSpace(a) => a.lookup(va).copied(),
                    _ => None,
                }
            }
            .ok_or(SyscallError::PageFault { va, write })?;
            if write && !mapping.flags.write || !write && !mapping.flags.read {
                return Err(SyscallError::PageFault { va, write });
            }
            // The kernel checks that T can read D and O; for writes it also
            // checks that T can modify O.
            self.check_observe(&tl, mapping.segment.container)
                .map_err(|_| SyscallError::PageFault { va, write })?;
            self.check_observe(&tl, mapping.segment.object)
                .map_err(|_| SyscallError::PageFault { va, write })?;
            if write {
                let olabel = self.obj(mapping.segment.object)?.header.label.clone();
                self.stats.label_checks += 1;
                if !tl.leq(&olabel) {
                    return Err(SyscallError::PageFault { va, write });
                }
            }
            Ok(PageFaultResolution {
                segment: mapping.segment,
                offset: mapping.offset + (va - mapping.va),
                writable: mapping.flags.write,
            })
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    // ----- threads ---------------------------------------------------------

    /// Creates a new thread in `container` with the given label and
    /// clearance, subject to `L_T ⊑ L_{T'} ⊑ C_{T'} ⊑ C_T`.
    ///
    /// The new thread gets a one-page thread-local segment in the same
    /// container.
    #[allow(clippy::too_many_arguments)]
    pub fn sys_thread_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        clearance: Label,
        entry_point: u64,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<ObjectId, SyscallError> {
            self.stats.label_checks += 3;
            tl.check_spawn(&tc, &label, &clearance)?;
            let mut thread_body = ThreadBody::new(clearance);
            thread_body.entry_point = entry_point;
            // Inherit the parent's address space by default.
            thread_body.address_space = self.thread(tid)?.1.address_space;
            let new_tid = self.create_object(
                &tl,
                &tc,
                container,
                label.clone(),
                PAGE_SIZE,
                descrip,
                ObjectBody::Thread(thread_body),
            )?;
            // Thread-local segment: one page, private to the thread.
            let local_label = label.drop_ownership(Level::L1);
            let local = self.create_object(
                &tl,
                &tc,
                container,
                local_label,
                PAGE_SIZE,
                &format!("tls:{descrip}"),
                ObjectBody::Segment(SegmentBody::zeroed(PAGE_SIZE as usize)),
            )?;
            if let Ok((_, body)) = self.thread_mut(new_tid) {
                body.local_segment = Some(local);
            }
            Ok(new_tid)
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Bootstrap path: creates the first thread of the machine without a
    /// calling thread.  Only the machine boot code uses this.
    pub fn bootstrap_thread(
        &mut self,
        container: ObjectId,
        label: Label,
        clearance: Label,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let id = self.fresh_id();
        let mut header =
            ObjectHeader::new(id, ObjectType::Thread, label.clone(), PAGE_SIZE, descrip);
        header.links = 1;
        let mut body = ThreadBody::new(clearance);
        // Thread-local segment for the bootstrap thread.
        let local_id = self.fresh_id();
        let mut local_header = ObjectHeader::new(
            local_id,
            ObjectType::Segment,
            label.drop_ownership(Level::L1),
            PAGE_SIZE,
            &format!("tls:{descrip}"),
        );
        local_header.links = 1;
        body.local_segment = Some(local_id);
        self.objects.insert(
            local_id,
            KObject {
                header: local_header,
                body: ObjectBody::Segment(SegmentBody::zeroed(PAGE_SIZE as usize)),
            },
        );
        self.objects.insert(
            id,
            KObject {
                header,
                body: ObjectBody::Thread(body),
            },
        );
        // Link both into the container and charge quota.
        let cobj = self.obj_mut(container)?;
        cobj.header.usage += 2 * PAGE_SIZE;
        match &mut cobj.body {
            ObjectBody::Container(c) => {
                c.link(id);
                c.link(local_id);
            }
            _ => {
                return Err(SyscallError::WrongType {
                    found: cobj.header.object_type,
                    expected: ObjectType::Container,
                })
            }
        }
        self.stats.objects_created += 2;
        Ok(id)
    }

    /// The calling thread's thread-local segment.
    // flowcheck: exempt(returns the id of the caller's own thread-local segment; self-only metadata)
    pub fn sys_self_local_segment(&mut self, tid: ObjectId) -> Result<ObjectId, SyscallError> {
        self.calling_thread(tid)?;
        self.thread(tid)?
            .1
            .local_segment
            .ok_or(SyscallError::InvalidArgument("thread has no local segment"))
    }

    /// Halts the calling thread; it can never run (or make syscalls) again.
    // flowcheck: exempt(halts the calling thread itself; a thread may always give up its own CPU)
    pub fn sys_self_halt(&mut self, tid: ObjectId) -> Result<(), SyscallError> {
        self.calling_thread(tid)?;
        let (_, body) = self.thread_mut(tid)?;
        body.state = ThreadState::Halted;
        Ok(())
    }

    /// Sends an alert to another thread: the caller must be able to write
    /// the target's address space and observe the target (§3.4).
    pub fn sys_thread_alert(
        &mut self,
        tid: ObjectId,
        target: ContainerEntry,
        code: u64,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, target)?;
            let target_as = {
                let (_, tbody) = self.thread(target.object)?;
                tbody.address_space
            };
            if let Some(aspace) = target_as {
                self.check_modify(&tl, aspace.object)?;
            } else {
                return Err(SyscallError::InvalidArgument(
                    "target thread has no address space",
                ));
            }
            // The alert also lets the target learn something about the
            // sender, so the sender must be allowed to convey information to
            // it: L_T ⊑ L_{T'}^J.
            let target_label = self.obj(target.object)?.header.label.clone();
            self.stats.label_checks += 1;
            if !tl.leq_high_rhs(&target_label) {
                return Err(SyscallError::CannotModify(target.object));
            }
            let (_, body) = self.thread_mut(target.object)?;
            body.pending_alerts.push(Alert { code });
            body.wake_flags |= WAKE_ALERT;
            // The alert is also announced on the target's completion
            // queue, so a thread blocked on an empty queue wakes without
            // polling `self_take_alert` every quantum.
            self.push_completion(
                target.object,
                Completion {
                    user_data: KERNEL_USER_DATA,
                    kind: CompletionKind::AlertPending { code },
                },
            );
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Removes and returns the oldest pending alert for the calling thread.
    // flowcheck: exempt(pops the caller's own alert queue; alerts were label-checked when posted by thread_alert)
    pub fn sys_self_take_alert(&mut self, tid: ObjectId) -> Result<Option<Alert>, SyscallError> {
        self.calling_thread(tid)?;
        let (_, body) = self.thread_mut(tid)?;
        if body.pending_alerts.is_empty() {
            Ok(None)
        } else {
            let alert = body.pending_alerts.remove(0);
            if body.pending_alerts.is_empty() {
                body.wake_flags &= !WAKE_ALERT;
            }
            // The alert's completion-queue notification is consumed with
            // it; a stale notification would re-wake a blocked thread
            // forever (the busy-poll the completion queue exists to avoid).
            if let Some(q) = self.completions.get_mut(&tid) {
                if let Some(i) = q
                    .iter()
                    .position(|c| matches!(c.kind, CompletionKind::AlertPending { .. }))
                {
                    q.remove(i);
                }
            }
            if !self.completion_pending(tid) {
                self.clear_wake_flag(tid, WAKE_COMPLETION);
            }
            Ok(Some(alert))
        }
    }

    /// Reads another thread's label, subject to `L_{T'}^J ⊑ L_T^J`.
    pub fn sys_thread_get_label(
        &mut self,
        tid: ObjectId,
        target: ContainerEntry,
    ) -> Result<Label, SyscallError> {
        self.sys_obj_get_label(tid, target)
    }

    // ----- gates (§3.5) ------------------------------------------------------

    /// Creates a gate.  The gate's label (which may contain `⋆`) and
    /// clearance must satisfy `L_T ⊑ L_G ⊑ C_G ⊑ C_T`.
    #[allow(clippy::too_many_arguments)]
    pub fn sys_gate_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        clearance: Label,
        address_space: Option<ContainerEntry>,
        entry_point: u64,
        closure_args: Vec<u64>,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<ObjectId, SyscallError> {
            self.stats.label_checks += 3;
            if !tl.leq(&label) {
                return Err(SyscallError::Label(
                    histar_label::LabelError::LabelNotMonotonic,
                ));
            }
            if !label.leq(&clearance) {
                return Err(SyscallError::Label(
                    histar_label::LabelError::ClearanceBelowLabel,
                ));
            }
            if !clearance.leq(&tc) {
                return Err(SyscallError::Label(
                    histar_label::LabelError::LabelExceedsClearance,
                ));
            }
            let mut gate = GateBody::new(clearance, entry_point);
            gate.address_space = address_space;
            gate.closure_args = closure_args;
            self.create_object(
                &tl,
                &tc,
                container,
                label,
                PAGE_SIZE,
                descrip,
                ObjectBody::Gate(gate),
            )
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Invokes a gate.  The calling thread specifies the label `requested`
    /// and clearance `requested_clearance` it wants on entry, plus a verify
    /// label used only to prove category possession to the gate's code.
    ///
    /// Permitted when `L_T ⊑ C_G`, `L_T ⊑ L_V`, and
    /// `(L_T^J ⊔ L_G^J)^⋆ ⊑ L_R ⊑ C_R ⊑ (C_T ⊔ C_G)`.
    pub fn sys_gate_enter(
        &mut self,
        tid: ObjectId,
        gate: ContainerEntry,
        requested: Label,
        requested_clearance: Label,
        verify: Label,
    ) -> Result<GateEntryResult, SyscallError> {
        let (tl, tc) = self.calling_thread(tid)?;
        let result = (|| -> Result<GateEntryResult, SyscallError> {
            self.check_entry(&tl, gate)?;
            let (glabel, gclearance, gbody) = {
                let o = self.typed(gate.object, ObjectType::Gate)?;
                match &o.body {
                    ObjectBody::Gate(g) => (o.header.label.clone(), g.clearance.clone(), g.clone()),
                    _ => unreachable!("typed() checked the object type"),
                }
            };
            self.stats.label_checks += 5;
            let lc = self.cost.label_check(tl.len() + glabel.len(), false);
            self.charge(lc);
            if !tl.leq(&gclearance) {
                return Err(SyscallError::GateClearance(gate.object));
            }
            if !tl.leq(&verify) {
                return Err(SyscallError::VerifyLabel);
            }
            let floor = tl.ownership_union(&glabel);
            if !floor.leq(&requested) {
                return Err(SyscallError::Label(
                    histar_label::LabelError::LabelNotMonotonic,
                ));
            }
            if !requested.leq(&requested_clearance) {
                return Err(SyscallError::Label(
                    histar_label::LabelError::ClearanceBelowLabel,
                ));
            }
            let clearance_bound = tc.lub(&gclearance);
            if !requested_clearance.leq(&clearance_bound) {
                return Err(SyscallError::Label(
                    histar_label::LabelError::LabelExceedsClearance,
                ));
            }

            self.stats.gate_invocations += 1;
            let gate_cost = self.cost.gate_overhead;
            self.charge(gate_cost);
            self.account_context_switch(gbody.address_space);

            {
                let (header, body) = self.thread_mut(tid)?;
                header.label = requested.clone();
                body.clearance = requested_clearance.clone();
                if gbody.address_space.is_some() {
                    body.address_space = gbody.address_space;
                }
                body.entry_point = gbody.entry_point;
            }
            Ok(GateEntryResult {
                label: requested,
                clearance: requested_clearance,
                address_space: gbody.address_space,
                entry_point: gbody.entry_point,
                stack_pointer: gbody.stack_pointer,
                closure_args: gbody.closure_args,
            })
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Reads a gate's clearance (for callers deciding how to invoke it).
    pub fn sys_gate_clearance(
        &mut self,
        tid: ObjectId,
        gate: ContainerEntry,
    ) -> Result<Label, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<Label, SyscallError> {
            self.check_entry(&tl, gate)?;
            let o = self.typed(gate.object, ObjectType::Gate)?;
            match &o.body {
                ObjectBody::Gate(g) => Ok(g.clearance.clone()),
                _ => unreachable!("typed() checked the object type"),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    // ----- category translation (exporter support) ---------------------------

    /// Binds a local category to its self-certifying global name, so that
    /// label checks survive the network hop between machines.
    ///
    /// Only a thread *owning* the category may assert its global identity —
    /// this is what keeps the translation table trustworthy: an exporter can
    /// only export categories whose owners granted it `⋆`, and a malicious
    /// process cannot re-point someone else's category at a name it controls.
    /// Bindings are write-once; rebinding to a different name (or binding a
    /// second local category to an already-claimed name) is refused, which
    /// guarantees that translation is a partial bijection.
    pub fn sys_category_bind_remote(
        &mut self,
        tid: ObjectId,
        category: Category,
        name: RemoteCategoryName,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            if !tl.owns(category) {
                return Err(SyscallError::NotCategoryOwner(category));
            }
            match self.remote_bindings.get(&category) {
                Some(existing) if *existing == name => return Ok(()), // idempotent
                Some(_) => {
                    return Err(SyscallError::InvalidArgument(
                        "category is already bound to a different global name",
                    ))
                }
                None => {}
            }
            if let Some(other) = self.remote_index.get(&name) {
                if *other != category {
                    return Err(SyscallError::InvalidArgument(
                        "global name is already bound to a different category",
                    ));
                }
            }
            self.remote_bindings.insert(category, name);
            self.remote_index.insert(name, category);
            Ok(())
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Looks up a category's global name.  Global names are self-certifying
    /// and deliberately public (they are what appears on the wire), so no
    /// label check is needed beyond the calling thread being runnable.
    // flowcheck: exempt(global names are self-certifying public handles; the binding table carries no payload)
    pub fn sys_category_get_remote(
        &mut self,
        tid: ObjectId,
        category: Category,
    ) -> Result<Option<RemoteCategoryName>, SyscallError> {
        self.calling_thread(tid)?;
        Ok(self.remote_bindings.get(&category).copied())
    }

    /// Resolves a global name back to the local category bound to it.
    // flowcheck: exempt(reverse lookup of a self-certifying public name; the binding table carries no payload)
    pub fn sys_category_resolve_remote(
        &mut self,
        tid: ObjectId,
        name: RemoteCategoryName,
    ) -> Result<Option<Category>, SyscallError> {
        self.calling_thread(tid)?;
        Ok(self.remote_index.get(&name).copied())
    }

    /// All category ↔ global-name bindings (persistence, diagnostics).
    pub fn remote_bindings(&self) -> impl Iterator<Item = (Category, RemoteCategoryName)> + '_ {
        self.remote_bindings.iter().map(|(c, n)| (*c, *n))
    }

    /// Restores the translation table after recovery.  Crate-internal: it
    /// bypasses the ownership check and the write-once rule, which is only
    /// sound when replaying bindings that were validated when first created
    /// into a freshly recovered kernel — exactly what machine recovery does.
    pub(crate) fn restore_remote_bindings(
        &mut self,
        bindings: impl IntoIterator<Item = (Category, RemoteCategoryName)>,
    ) {
        for (c, n) in bindings {
            self.remote_bindings.insert(c, n);
            self.remote_index.insert(n, c);
        }
    }

    // ----- devices (§4, §5.7) ------------------------------------------------

    /// Bootstrap path: creates a device object directly in a container.
    /// Only machine boot code uses this (devices are discovered by the
    /// kernel, not created by threads).
    pub fn boot_create_device(
        &mut self,
        container: ObjectId,
        label: Label,
        body: DeviceBody,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        let id = self.fresh_id();
        let mut header = ObjectHeader::new(id, ObjectType::Device, label, PAGE_SIZE, descrip);
        header.links = 1;
        self.objects.insert(
            id,
            KObject {
                header,
                body: ObjectBody::Device(body),
            },
        );
        let cobj = self.obj_mut(container)?;
        cobj.header.usage += PAGE_SIZE;
        match &mut cobj.body {
            ObjectBody::Container(c) => c.link(id),
            _ => {
                return Err(SyscallError::WrongType {
                    found: cobj.header.object_type,
                    expected: ObjectType::Container,
                })
            }
        }
        self.stats.objects_created += 1;
        Ok(id)
    }

    /// Returns the MAC address of a network device (requires observe).
    pub fn sys_net_mac(
        &mut self,
        tid: ObjectId,
        device: ContainerEntry,
    ) -> Result<[u8; 6], SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<[u8; 6], SyscallError> {
            self.check_entry(&tl, device)?;
            self.check_observe(&tl, device.object)?;
            let o = self.typed(device.object, ObjectType::Device)?;
            match &o.body {
                ObjectBody::Device(d) => Ok(d.mac),
                _ => unreachable!("typed() checked the object type"),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Queues a frame for transmission (requires modify on the device).
    pub fn sys_net_transmit(
        &mut self,
        tid: ObjectId,
        device: ContainerEntry,
        frame: Vec<u8>,
    ) -> Result<(), SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<(), SyscallError> {
            self.check_entry(&tl, device)?;
            self.check_modify(&tl, device.object)?;
            let o = self.obj_mut(device.object)?;
            match &mut o.body {
                ObjectBody::Device(d) => {
                    d.tx_queue.push(frame);
                    Ok(())
                }
                _ => Err(SyscallError::WrongType {
                    found: o.header.object_type,
                    expected: ObjectType::Device,
                }),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Takes the next received frame, if any (requires modify on the device,
    /// since consuming a frame changes its state).
    pub fn sys_net_receive(
        &mut self,
        tid: ObjectId,
        device: ContainerEntry,
    ) -> Result<Option<Vec<u8>>, SyscallError> {
        let (tl, _) = self.calling_thread(tid)?;
        let result = (|| -> Result<Option<Vec<u8>>, SyscallError> {
            self.check_entry(&tl, device)?;
            self.check_modify(&tl, device.object)?;
            let o = self.obj_mut(device.object)?;
            match &mut o.body {
                ObjectBody::Device(d) => {
                    if d.rx_queue.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(d.rx_queue.remove(0)))
                    }
                }
                _ => Err(SyscallError::WrongType {
                    found: o.header.object_type,
                    expected: ObjectType::Device,
                }),
            }
        })();
        result.inspect_err(|_| self.stats.errors += 1)
    }

    /// Simulation hook (not a system call): delivers a frame "from the
    /// wire" into a device's receive queue.
    pub fn device_inject_rx(
        &mut self,
        device: ObjectId,
        frame: Vec<u8>,
    ) -> Result<(), SyscallError> {
        let o = self.obj_mut(device)?;
        match &mut o.body {
            ObjectBody::Device(d) => {
                d.rx_queue.push(frame);
                Ok(())
            }
            _ => Err(SyscallError::WrongType {
                found: o.header.object_type,
                expected: ObjectType::Device,
            }),
        }
    }

    /// Simulation hook (not a system call): drains frames the machine has
    /// transmitted, as the physical wire would.
    pub fn device_drain_tx(&mut self, device: ObjectId) -> Result<Vec<Vec<u8>>, SyscallError> {
        let o = self.obj_mut(device)?;
        match &mut o.body {
            ObjectBody::Device(d) => Ok(std::mem::take(&mut d.tx_queue)),
            _ => Err(SyscallError::WrongType {
                found: o.header.object_type,
                expected: ObjectType::Device,
            }),
        }
    }

    // ----- introspection used by the store / machine -------------------------

    /// Iterates over all objects (used by snapshotting).
    pub fn objects(&self) -> impl Iterator<Item = (&ObjectId, &KObject)> {
        // flowcheck: exempt(hot object table stays a HashMap; every consumer sorts by id before order becomes visible — see Machine::snapshot)
        self.objects.iter()
    }

    /// Looks up an object directly (kernel-internal / persistence).
    pub fn raw_object(&self, id: ObjectId) -> Option<&KObject> {
        self.objects.get(&id)
    }

    /// Replaces the entire object table (used by recovery).
    #[allow(clippy::disallowed_types)]
    pub fn restore_objects(
        &mut self,
        root: ObjectId,
        objects: HashMap<ObjectId, KObject>,
        id_counter: u64,
        category_counter: u64,
        seed: u64,
    ) {
        self.objects = objects;
        self.root = root;
        self.id_counter = id_counter;
        self.id_cipher = FeistelCipher::new(seed ^ 0xbeef);
        self.categories = CategoryAllocator::resume(seed ^ 0xcafe, category_counter);
    }

    /// Counters needed to persist allocator state across snapshots.
    pub fn allocator_counters(&self) -> (u64, u64) {
        (self.id_counter, self.categories.allocated())
    }

    /// Truncates a descriptive string the way object creation would.
    pub fn normalize_descrip(s: &str) -> String {
        truncate_descrip(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boots a bare kernel with one unrestricted thread in the root
    /// container and returns `(kernel, thread id)`.
    fn boot() -> (Kernel, ObjectId) {
        let mut k = Kernel::new(42, None);
        let root = k.root_container();
        let tid = k
            .bootstrap_thread(
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                "init",
            )
            .unwrap();
        (k, tid)
    }

    fn entry(k: &Kernel, o: ObjectId) -> ContainerEntry {
        ContainerEntry::new(k.root_container(), o)
    }

    #[test]
    fn bootstrap_creates_root_and_thread() {
        let (k, tid) = boot();
        assert_eq!(k.object_count(), 3); // root + thread + tls
        assert_eq!(k.thread_label(tid).unwrap(), Label::unrestricted());
        assert_eq!(k.thread_clearance(tid).unwrap(), Label::default_clearance());
    }

    #[test]
    fn create_category_grants_ownership_and_clearance() {
        let (mut k, tid) = boot();
        let c = k.sys_create_category(tid).unwrap();
        let label = k.thread_label(tid).unwrap();
        let clearance = k.thread_clearance(tid).unwrap();
        assert!(label.owns(c));
        assert_eq!(clearance.level(c), Level::L3);
        // Another category is distinct.
        let c2 = k.sys_create_category(tid).unwrap();
        assert_ne!(c, c2);
    }

    #[test]
    fn self_set_label_respects_clearance() {
        let (mut k, tid) = boot();
        let c = k.sys_create_category(tid).unwrap();
        // Tainting to 3 in an owned category is allowed (clearance 3 there).
        let lbl = k.thread_label(tid).unwrap().with(c, Level::L3);
        k.sys_self_set_label(tid, lbl.clone()).unwrap();
        assert_eq!(k.thread_label(tid).unwrap(), lbl);
        // Tainting to 3 in an unowned category exceeds the {2} clearance.
        let other = Category::from_raw(12345);
        let too_high = lbl.with(other, Level::L3);
        assert!(matches!(
            k.sys_self_set_label(tid, too_high),
            Err(SyscallError::Label(_))
        ));
    }

    #[test]
    fn segment_create_read_write() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let seg = k
            .sys_segment_create(tid, root, Label::unrestricted(), 100, "data")
            .unwrap();
        let e = entry(&k, seg);
        k.sys_segment_write(tid, e, 10, b"hello").unwrap();
        assert_eq!(k.sys_segment_read(tid, e, 10, 5).unwrap(), b"hello");
        assert_eq!(k.sys_segment_len(tid, e).unwrap(), 100);
        k.sys_segment_resize(tid, e, 200).unwrap();
        assert_eq!(k.sys_segment_len(tid, e).unwrap(), 200);
        // Reads past the end are rejected.
        assert!(k.sys_segment_read(tid, e, 190, 100).is_err());
    }

    #[test]
    fn tainted_segment_is_unreadable_without_taint() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        // An owner creates a secret segment tainted in its category.
        let c = k.sys_create_category(tid).unwrap();
        let secret_label = Label::builder().set(c, Level::L3).build();
        let seg = k
            .sys_segment_create(tid, root, secret_label, 10, "secret")
            .unwrap();
        let e = entry(&k, seg);
        // The owner can read it.
        assert!(k.sys_segment_read(tid, e, 0, 1).is_ok());

        // A second, unprivileged thread cannot.
        let other = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "other",
            )
            .unwrap();
        assert_eq!(
            k.sys_segment_read(other, e, 0, 1),
            Err(SyscallError::CannotObserve(seg))
        );
        // It can taint itself up to clearance 2... which is still below 3,
        // so even after self-tainting the read fails.
        let tainted = Label::builder().set(c, Level::L2).build();
        k.sys_self_set_label(other, tainted).unwrap();
        assert!(k.sys_segment_read(other, e, 0, 1).is_err());
    }

    #[test]
    fn low_integrity_thread_cannot_write_high_integrity_segment() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let c = k.sys_create_category(tid).unwrap();
        // {c0, 1}: only owners of c may modify.
        let protected = Label::builder().set(c, Level::L0).build();
        let seg = k
            .sys_segment_create(tid, root, protected, 10, "protected")
            .unwrap();
        let e = entry(&k, seg);
        // The owner can write.
        k.sys_segment_write(tid, e, 0, b"x").unwrap();
        // An unprivileged thread can read but not write.
        let other = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "other",
            )
            .unwrap();
        assert!(k.sys_segment_read(other, e, 0, 1).is_ok());
        assert_eq!(
            k.sys_segment_write(other, e, 0, b"y"),
            Err(SyscallError::CannotModify(seg))
        );
    }

    #[test]
    fn container_hierarchy_and_unref() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let dir = k
            .sys_container_create(tid, root, Label::unrestricted(), "dir", 0, 1 << 20)
            .unwrap();
        let seg = k
            .sys_segment_create(tid, dir, Label::unrestricted(), 4096, "file")
            .unwrap();
        assert_eq!(k.sys_container_get_parent(tid, dir).unwrap(), root);
        assert!(k.sys_container_list(tid, dir).unwrap().contains(&seg));
        // Unreferencing the directory drops the whole subtree.
        let count_before = k.object_count();
        k.sys_obj_unref(tid, entry(&k, dir)).unwrap();
        assert_eq!(k.object_count(), count_before - 2);
        assert!(k.raw_object(seg).is_none());
    }

    #[test]
    fn quota_is_charged_and_enforced() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let small = k
            .sys_container_create(tid, root, Label::unrestricted(), "small", 0, 8192)
            .unwrap();
        // A 4-KiB segment fits.
        let _seg = k
            .sys_segment_create(tid, small, Label::unrestricted(), 4096, "a")
            .unwrap();
        // Another 8-KiB segment does not.
        assert!(matches!(
            k.sys_segment_create(tid, small, Label::unrestricted(), 8192, "b"),
            Err(SyscallError::QuotaExceeded { .. })
        ));
        // Moving quota into the container's child makes room... first grow
        // the container itself from the root.
        k.sys_quota_move(tid, root, small, 8192).unwrap();
        assert!(k
            .sys_segment_create(tid, small, Label::unrestricted(), 8192, "b")
            .is_ok());
    }

    #[test]
    fn avoid_types_is_inherited() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let no_threads = k
            .sys_container_create(
                tid,
                root,
                Label::unrestricted(),
                "nothreads",
                ObjectType::Thread.mask_bit(),
                1 << 20,
            )
            .unwrap();
        let sub = k
            .sys_container_create(tid, no_threads, Label::unrestricted(), "sub", 0, 1 << 16)
            .unwrap();
        assert!(matches!(
            k.sys_thread_create(
                tid,
                sub,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "t"
            ),
            Err(SyscallError::TypeForbidden(ObjectType::Thread))
        ));
        // Segments are still allowed.
        assert!(k
            .sys_segment_create(tid, sub, Label::unrestricted(), 16, "s")
            .is_ok());
    }

    #[test]
    fn thread_spawn_rules() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        // Clearance above the parent's clearance is rejected.
        let too_high = Label::new(Level::L3);
        assert!(k
            .sys_thread_create(tid, root, Label::unrestricted(), too_high, 0, "t")
            .is_err());
        // A properly bounded child works and inherits the address space.
        let child = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                7,
                "child",
            )
            .unwrap();
        assert_eq!(k.thread_label(child).unwrap(), Label::unrestricted());
    }

    #[test]
    fn address_space_and_page_fault() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let seg = k
            .sys_segment_create(tid, root, Label::unrestricted(), 8192, "text")
            .unwrap();
        let aspace = k
            .sys_as_create(tid, root, Label::unrestricted(), "as")
            .unwrap();
        let ae = entry(&k, aspace);
        k.sys_as_map(
            tid,
            ae,
            Mapping {
                va: 0x10_0000,
                segment: entry(&k, seg),
                offset: 0,
                npages: 2,
                flags: crate::bodies::MappingFlags::rw(),
            },
        )
        .unwrap();
        k.sys_self_set_as(tid, ae).unwrap();
        let r = k.sys_page_fault(tid, 0x10_1000, false).unwrap();
        assert_eq!(r.segment.object, seg);
        assert_eq!(r.offset, 4096);
        assert!(r.writable);
        // An unmapped address faults to the user handler.
        assert!(matches!(
            k.sys_page_fault(tid, 0x20_0000, false),
            Err(SyscallError::PageFault { .. })
        ));
        // A write fault on a read-only mapping is refused.
        k.sys_as_map(
            tid,
            ae,
            Mapping {
                va: 0x20_0000,
                segment: entry(&k, seg),
                offset: 0,
                npages: 1,
                flags: crate::bodies::MappingFlags::ro(),
            },
        )
        .unwrap();
        assert!(matches!(
            k.sys_page_fault(tid, 0x20_0000, true),
            Err(SyscallError::PageFault { write: true, .. })
        ));
    }

    #[test]
    fn gate_transfers_privilege() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        // A "daemon" thread owning category d creates a gate granting d.
        let daemon = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "daemon",
            )
            .unwrap();
        let d = k.sys_create_category(daemon).unwrap();
        let gate_label = k.thread_label(daemon).unwrap(); // owns d
        let gate = k
            .sys_gate_create(
                tid_owner(&k, daemon),
                root,
                gate_label,
                Label::default_clearance(),
                None,
                0xdead,
                vec![1, 2, 3],
                "service",
            )
            .unwrap();

        // An unprivileged client invokes the gate, requesting ownership of d.
        let client = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "client",
            )
            .unwrap();
        let requested = Label::builder().own(d).build();
        let res = k
            .sys_gate_enter(
                client,
                entry(&k, gate),
                requested.clone(),
                Label::default_clearance(),
                Label::unrestricted(),
            )
            .unwrap();
        assert_eq!(res.entry_point, 0xdead);
        assert_eq!(res.closure_args, vec![1, 2, 3]);
        assert!(k.thread_label(client).unwrap().owns(d));

        // Requesting ownership of a category the gate does not own fails.
        let bogus = Category::from_raw(999_999);
        let too_much = Label::builder().own(d).own(bogus).build();
        let client2 = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "client2",
            )
            .unwrap();
        assert!(k
            .sys_gate_enter(
                client2,
                entry(&k, gate),
                too_much,
                Label::default_clearance(),
                Label::unrestricted(),
            )
            .is_err());
    }

    /// Helper used by the gate test: the daemon itself creates the gate.
    fn tid_owner(_k: &Kernel, daemon: ObjectId) -> ObjectId {
        daemon
    }

    #[test]
    fn gate_clearance_gates_entry() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let d = k.sys_create_category(tid).unwrap();
        // The gate requires ownership of d to invoke: clearance {d0, 2}.
        let gate_clearance = Label::builder()
            .set(d, Level::L0)
            .default_level(Level::L2)
            .build();
        let gate = k
            .sys_gate_create(
                tid,
                root,
                k.thread_label(tid).unwrap(),
                gate_clearance,
                None,
                1,
                vec![],
                "guarded",
            )
            .unwrap();
        // A thread without d cannot invoke it (its label {1} ⋢ {d0,2}).
        let outsider = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "outsider",
            )
            .unwrap();
        assert_eq!(
            k.sys_gate_enter(
                outsider,
                entry(&k, gate),
                Label::unrestricted(),
                Label::default_clearance(),
                Label::unrestricted(),
            )
            .unwrap_err(),
            SyscallError::GateClearance(gate)
        );
    }

    #[test]
    fn thread_alert_requires_address_space_write() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let aspace = k
            .sys_as_create(tid, root, Label::unrestricted(), "as")
            .unwrap();
        k.sys_self_set_as(tid, entry(&k, aspace)).unwrap();
        let peer = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "peer",
            )
            .unwrap();
        // peer inherits tid's address space, which it can write; alert works.
        k.sys_thread_alert(peer, entry(&k, tid), 15).unwrap();
        assert_eq!(
            k.sys_self_take_alert(tid).unwrap(),
            Some(crate::bodies::Alert { code: 15 })
        );
        assert_eq!(k.sys_self_take_alert(tid).unwrap(), None);
    }

    #[test]
    fn immutable_objects_reject_writes() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let seg = k
            .sys_segment_create(tid, root, Label::unrestricted(), 10, "ro")
            .unwrap();
        let e = entry(&k, seg);
        k.sys_obj_set_immutable(tid, e).unwrap();
        assert_eq!(
            k.sys_segment_write(tid, e, 0, b"x"),
            Err(SyscallError::Immutable(seg))
        );
        // Reads still work.
        assert!(k.sys_segment_read(tid, e, 0, 1).is_ok());
    }

    #[test]
    fn hard_link_requires_fixed_quota() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let dir = k
            .sys_container_create(tid, root, Label::unrestricted(), "dir", 0, 1 << 20)
            .unwrap();
        let seg = k
            .sys_segment_create(tid, root, Label::unrestricted(), 10, "shared")
            .unwrap();
        let e = entry(&k, seg);
        assert_eq!(
            k.sys_hard_link(tid, e, dir),
            Err(SyscallError::QuotaNotFixed(seg))
        );
        k.sys_obj_set_fixed_quota(tid, e).unwrap();
        k.sys_hard_link(tid, e, dir).unwrap();
        // The object now survives removal of one link.
        k.sys_obj_unref(tid, e).unwrap();
        assert!(k.raw_object(seg).is_some());
        k.sys_obj_unref(tid, ContainerEntry::new(dir, seg)).unwrap();
        assert!(k.raw_object(seg).is_none());
    }

    #[test]
    fn unref_root_is_rejected() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        assert_eq!(
            k.sys_obj_unref(tid, ContainerEntry::self_entry(root)),
            Err(SyscallError::RootContainer)
        );
    }

    #[test]
    fn network_device_with_taint() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        // Create netd-ish categories and the device label {nr3, nw0, i2, 1}.
        let nr = k.sys_create_category(tid).unwrap();
        let nw = k.sys_create_category(tid).unwrap();
        let i = k.sys_create_category(tid).unwrap();
        let dev_label = Label::builder()
            .set(nr, Level::L3)
            .set(nw, Level::L0)
            .set(i, Level::L2)
            .build();
        let dev = k
            .boot_create_device(
                root,
                dev_label,
                DeviceBody::network([1, 2, 3, 4, 5, 6]),
                "eth0",
            )
            .unwrap();
        let de = entry(&k, dev);
        // The owner of nr/nw (which also owns i here) can use the device.
        k.sys_net_transmit(tid, de, vec![0xaa]).unwrap();
        k.device_inject_rx(dev, vec![0xbb]).unwrap();
        assert_eq!(k.sys_net_receive(tid, de).unwrap(), Some(vec![0xbb]));
        assert_eq!(k.sys_net_mac(tid, de).unwrap(), [1, 2, 3, 4, 5, 6]);
        assert_eq!(k.device_drain_tx(dev).unwrap(), vec![vec![0xaa]]);
        // An unprivileged thread cannot even observe the device (nr 3).
        let other = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "other",
            )
            .unwrap();
        assert!(k.sys_net_mac(other, de).is_err());
        assert!(k.sys_net_transmit(other, de, vec![1]).is_err());
    }

    #[test]
    fn syscall_stats_accumulate() {
        let (mut k, tid) = boot();
        let before = k.stats();
        let root = k.root_container();
        let _ = k.sys_segment_create(tid, root, Label::unrestricted(), 10, "s");
        let _ = k.sys_self_get_label(tid);
        let after = k.stats();
        let delta = after.since(&before);
        assert_eq!(delta.syscalls, 2);
        assert_eq!(delta.objects_created, 1);
        assert!(delta.label_checks >= 1);
    }

    #[test]
    fn halted_thread_cannot_syscall() {
        let (mut k, tid) = boot();
        k.sys_self_halt(tid).unwrap();
        assert_eq!(
            k.sys_self_get_label(tid),
            Err(SyscallError::ThreadHalted(tid))
        );
    }

    #[test]
    fn thread_local_segment_is_always_writable() {
        let (mut k, tid) = boot();
        let local = k.sys_self_local_segment(tid).unwrap();
        // Even after tainting itself, the thread can use its local segment.
        let c = k.sys_create_category(tid).unwrap();
        let tainted = k.thread_label(tid).unwrap().with(c, Level::L3);
        k.sys_self_set_label(tid, tainted).unwrap();
        let e = ContainerEntry::new(k.root_container(), local);
        k.sys_segment_write(tid, e, 0, b"scratch").unwrap();
        assert_eq!(k.sys_segment_read(tid, e, 0, 7).unwrap(), b"scratch");
    }

    #[test]
    fn category_binding_requires_ownership() {
        let (mut k, tid) = boot();
        let c = k.sys_create_category(tid).unwrap();
        let name = (0xabcd, 7);
        // A thread that does not own the category cannot bind it.
        let root = k.root_container();
        let other = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "other",
            )
            .unwrap();
        assert_eq!(
            k.sys_category_bind_remote(other, c, name),
            Err(SyscallError::NotCategoryOwner(c))
        );
        // The owner can, and the binding resolves both ways.
        k.sys_category_bind_remote(tid, c, name).unwrap();
        assert_eq!(k.sys_category_get_remote(tid, c).unwrap(), Some(name));
        assert_eq!(k.sys_category_resolve_remote(tid, name).unwrap(), Some(c));
        // Idempotent rebinding is fine; changing the name is not.
        k.sys_category_bind_remote(tid, c, name).unwrap();
        assert!(matches!(
            k.sys_category_bind_remote(tid, c, (0xabcd, 8)),
            Err(SyscallError::InvalidArgument(_))
        ));
        // A second category cannot claim an already-bound name.
        let c2 = k.sys_create_category(tid).unwrap();
        assert!(matches!(
            k.sys_category_bind_remote(tid, c2, name),
            Err(SyscallError::InvalidArgument(_))
        ));
    }

    #[test]
    fn observing_requires_container_readability() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        // A private container readable only by owners of category c.
        let c = k.sys_create_category(tid).unwrap();
        let private = Label::builder().set(c, Level::L3).build();
        let dir = k
            .sys_container_create(tid, root, private, "private-dir", 0, 1 << 20)
            .unwrap();
        let seg = k
            .sys_segment_create(tid, dir, Label::unrestricted(), 10, "leaf")
            .unwrap();
        // Another thread cannot name the segment through the private
        // container, even though the segment itself is unrestricted.
        let other = k
            .sys_thread_create(
                tid,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                "other",
            )
            .unwrap();
        assert!(matches!(
            k.sys_segment_read(other, ContainerEntry::new(dir, seg), 0, 1),
            Err(SyscallError::CannotObserve(_))
        ));
    }
}
