//! Trap-style system-call dispatch: the single choke point between user
//! code and the kernel.
//!
//! Real HiStar threads reach the kernel through one trap instruction; every
//! call crosses the same boundary, where it can be checked, counted and
//! audited.  This module reproduces that boundary for the simulated kernel:
//! a [`Syscall`] value names one of the `sys_*` entry points ([`SYSCALL_COUNT`] of them) together
//! with its arguments, and [`Kernel::dispatch`] is the only place where the
//! value is decoded and executed.  Dispatch charges the call's CPU cost
//! (via the underlying `sys_*` implementation), maintains per-syscall
//! counters in [`DispatchStats`], and — when tracing is enabled — appends a
//! [`TraceRecord`] to a bounded ring buffer, giving the machine a
//! replayable `(tick, thread, syscall, result)` audit stream.
//!
//! The `trap_*` methods are the user-level calling convention: thin typed
//! wrappers that build the [`Syscall`] value, trap through
//! [`Kernel::dispatch`], and unwrap the typed [`SyscallResult`].  All
//! library layers (`histar-unix`, `histar-auth`, `histar-apps`,
//! `histar-net`, `histar-exporter`) use these instead of calling the
//! `sys_*` methods directly, so the whole system's kernel interaction is
//! visible in one stream.

use crate::abi::{Completion, CompletionKind, SqEntry, SqOp, SubmissionQueue};
use crate::bodies::{Alert, Mapping};
use crate::kernel::{GateEntryResult, Kernel, PageFaultResolution, RemoteCategoryName};
use crate::object::{ContainerEntry, ObjectId, ObjectType, METADATA_LEN};
use crate::syscall::SyscallError;
use histar_label::{Category, Label};
use histar_obs::{Histogram, Span};
use std::collections::VecDeque;

/// One system call with its arguments — what a real thread would place in
/// registers before trapping.
///
/// Every variant corresponds 1:1 to a `sys_*` method on [`Kernel`]; the
/// calling thread is supplied separately to [`Kernel::dispatch`].
#[derive(Clone, Debug, PartialEq)]
pub enum Syscall {
    /// `sys_create_category`.
    CreateCategory,
    /// `sys_self_set_label`.
    SelfSetLabel {
        /// The requested new thread label.
        label: Label,
    },
    /// `sys_self_set_clearance`.
    SelfSetClearance {
        /// The requested new clearance.
        clearance: Label,
    },
    /// `sys_self_get_label`.
    SelfGetLabel,
    /// `sys_self_get_clearance`.
    SelfGetClearance,
    /// `sys_container_create`.
    ContainerCreate {
        /// Parent container.
        parent: ObjectId,
        /// Label of the new container.
        label: Label,
        /// Descriptive string.
        descrip: String,
        /// Object-type mask forbidden under the new container.
        avoid_types: u8,
        /// Quota charged to the parent.
        quota: u64,
    },
    /// `sys_obj_unref`.
    ObjUnref {
        /// The container entry to unlink.
        entry: ContainerEntry,
    },
    /// `sys_hard_link`.
    HardLink {
        /// Source container entry.
        entry: ContainerEntry,
        /// Destination container.
        dst: ObjectId,
    },
    /// `sys_container_quota_avail`.
    ContainerQuotaAvail {
        /// The container to query.
        container: ObjectId,
    },
    /// `sys_container_get_parent`.
    ContainerGetParent {
        /// The container to query.
        container: ObjectId,
    },
    /// `sys_container_list`.
    ContainerList {
        /// The container to list.
        container: ObjectId,
    },
    /// `sys_quota_move`.
    QuotaMove {
        /// The container quota moves out of (or back into).
        container: ObjectId,
        /// The object quota moves into (or out of).
        object: ObjectId,
        /// Bytes to move (negative moves quota back to the container).
        delta: i64,
    },
    /// `sys_obj_get_label`.
    ObjGetLabel {
        /// The object, named through a container entry.
        entry: ContainerEntry,
    },
    /// `sys_obj_get_info`.
    ObjGetInfo {
        /// The object, named through a container entry.
        entry: ContainerEntry,
    },
    /// `sys_obj_get_metadata`.
    ObjGetMetadata {
        /// The object, named through a container entry.
        entry: ContainerEntry,
    },
    /// `sys_obj_set_metadata`.
    ObjSetMetadata {
        /// The object, named through a container entry.
        entry: ContainerEntry,
        /// The new 64-byte metadata area.
        metadata: [u8; METADATA_LEN],
    },
    /// `sys_obj_set_immutable`.
    ObjSetImmutable {
        /// The object, named through a container entry.
        entry: ContainerEntry,
    },
    /// `sys_obj_set_fixed_quota`.
    ObjSetFixedQuota {
        /// The object, named through a container entry.
        entry: ContainerEntry,
    },
    /// `sys_segment_create`.
    SegmentCreate {
        /// The container the segment is created in.
        container: ObjectId,
        /// The segment's label.
        label: Label,
        /// Initial length in bytes.
        len: u64,
        /// Descriptive string.
        descrip: String,
    },
    /// `sys_segment_resize`.
    SegmentResize {
        /// The segment, named through a container entry.
        entry: ContainerEntry,
        /// The new length.
        len: u64,
    },
    /// `sys_segment_read`.
    SegmentRead {
        /// The segment, named through a container entry.
        entry: ContainerEntry,
        /// Byte offset of the read.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// `sys_segment_write`.
    SegmentWrite {
        /// The segment, named through a container entry.
        entry: ContainerEntry,
        /// Byte offset of the write.
        offset: u64,
        /// The bytes to write.
        data: Vec<u8>,
    },
    /// `sys_segment_len`.
    SegmentLen {
        /// The segment, named through a container entry.
        entry: ContainerEntry,
    },
    /// `sys_segment_copy`.
    SegmentCopy {
        /// Source segment.
        src: ContainerEntry,
        /// Destination container.
        dst_container: ObjectId,
        /// Label of the copy.
        label: Label,
        /// Descriptive string.
        descrip: String,
    },
    /// `sys_as_create`.
    AsCreate {
        /// The container the address space is created in.
        container: ObjectId,
        /// The address space's label.
        label: Label,
        /// Descriptive string.
        descrip: String,
    },
    /// `sys_as_copy`.
    AsCopy {
        /// Source address space.
        src: ContainerEntry,
        /// Destination container.
        dst_container: ObjectId,
        /// Label of the copy.
        label: Label,
        /// Descriptive string.
        descrip: String,
    },
    /// `sys_as_map`.
    AsMap {
        /// The address space, named through a container entry.
        aspace: ContainerEntry,
        /// The mapping to insert or replace.
        mapping: Mapping,
    },
    /// `sys_as_unmap`.
    AsUnmap {
        /// The address space, named through a container entry.
        aspace: ContainerEntry,
        /// Virtual address of the mapping to remove.
        va: u64,
    },
    /// `sys_self_set_as`.
    SelfSetAs {
        /// The address space to switch to.
        aspace: ContainerEntry,
    },
    /// `sys_page_fault`.
    PageFault {
        /// The faulting virtual address.
        va: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// `sys_thread_create`.
    ThreadCreate {
        /// The container the thread is created in.
        container: ObjectId,
        /// The new thread's label.
        label: Label,
        /// The new thread's clearance.
        clearance: Label,
        /// Abstract entry point.
        entry_point: u64,
        /// Descriptive string.
        descrip: String,
    },
    /// `sys_self_local_segment`.
    SelfLocalSegment,
    /// `sys_self_halt`.
    SelfHalt,
    /// `sys_thread_alert`.
    ThreadAlert {
        /// The target thread, named through a container entry.
        target: ContainerEntry,
        /// The alert code (Unix signal number, for the library).
        code: u64,
    },
    /// `sys_self_take_alert`.
    SelfTakeAlert,
    /// `sys_thread_get_label`.
    ThreadGetLabel {
        /// The target thread, named through a container entry.
        target: ContainerEntry,
    },
    /// `sys_gate_create`.
    GateCreate {
        /// The container the gate is created in.
        container: ObjectId,
        /// The gate's label (may contain `⋆`).
        label: Label,
        /// The gate's clearance.
        clearance: Label,
        /// Address space entering threads switch to, if any.
        address_space: Option<ContainerEntry>,
        /// Entry point for entering threads.
        entry_point: u64,
        /// Closure arguments passed to the entry point.
        closure_args: Vec<u64>,
        /// Descriptive string.
        descrip: String,
    },
    /// `sys_gate_enter`.
    GateEnter {
        /// The gate to invoke.
        gate: ContainerEntry,
        /// The label the thread requests on entry.
        requested: Label,
        /// The clearance the thread requests on entry.
        requested_clearance: Label,
        /// The verify label proving category possession to the gate code.
        verify: Label,
    },
    /// `sys_gate_clearance`.
    GateClearance {
        /// The gate to query.
        gate: ContainerEntry,
    },
    /// `sys_category_bind_remote`.
    CategoryBindRemote {
        /// The local category.
        category: Category,
        /// Its self-certifying global name.
        name: RemoteCategoryName,
    },
    /// `sys_category_get_remote`.
    CategoryGetRemote {
        /// The local category.
        category: Category,
    },
    /// `sys_category_resolve_remote`.
    CategoryResolveRemote {
        /// The global name to resolve.
        name: RemoteCategoryName,
    },
    /// `sys_net_mac`.
    NetMac {
        /// The device, named through a container entry.
        device: ContainerEntry,
    },
    /// `sys_net_transmit`.
    NetTransmit {
        /// The device, named through a container entry.
        device: ContainerEntry,
        /// The frame to queue for transmission.
        frame: Vec<u8>,
    },
    /// `sys_net_receive`.
    NetReceive {
        /// The device, named through a container entry.
        device: ContainerEntry,
    },
    /// `sys_persist_put`: create or update a labeled record in the
    /// single-level store's persist namespace.
    PersistPut {
        /// The record key (must lie in the persist namespace).
        key: u64,
        /// Label for a newly created record (ignored when the record
        /// exists — a record's label is immutable, like any non-thread
        /// kernel object's).
        label: Option<Label>,
        /// Byte offset of the write within the record payload.
        offset: u64,
        /// The bytes to write.
        data: Vec<u8>,
    },
    /// `sys_persist_read`: read bytes out of a persist record.
    PersistRead {
        /// The record key.
        key: u64,
        /// Byte offset of the read.
        offset: u64,
        /// Bytes to read (`u64::MAX` reads to the end of the record).
        len: u64,
    },
    /// `sys_persist_delete`: remove a persist record.
    PersistDelete {
        /// The record key.
        key: u64,
    },
    /// `sys_persist_scan`: range-scan the persist namespace, returning
    /// each observable record's key and payload.
    PersistScan {
        /// Inclusive lower key bound.
        lo: u64,
        /// Exclusive upper key bound.
        hi: u64,
        /// Maximum number of records to return.
        max: u64,
    },
    /// `sys_persist_sync`: make the named records durable (a write-ahead
    /// log append per record — HiStar's `fsync` primitive for data living
    /// directly in the store).
    PersistSync {
        /// The record keys to sync; keys with no record log a durable
        /// deletion instead.
        keys: Vec<u64>,
    },
    /// `sys_persist_get_label`: the label a persist record carries.
    PersistGetLabel {
        /// The record key.
        key: u64,
    },
    /// `sys_segment_watch`: register a one-shot readiness watch on a
    /// segment; the kernel pushes an `ObjectReady` completion when the
    /// segment is next written or deallocated.
    SegmentWatch {
        /// The segment, named through a container entry.
        entry: ContainerEntry,
    },
}

/// Number of distinct system calls in the ABI.
pub const SYSCALL_COUNT: usize = 52;

/// The names of all system calls, indexed by [`Syscall::index`].
pub const SYSCALL_NAMES: [&str; SYSCALL_COUNT] = [
    "create_category",
    "self_set_label",
    "self_set_clearance",
    "self_get_label",
    "self_get_clearance",
    "container_create",
    "obj_unref",
    "hard_link",
    "container_quota_avail",
    "container_get_parent",
    "container_list",
    "quota_move",
    "obj_get_label",
    "obj_get_info",
    "obj_get_metadata",
    "obj_set_metadata",
    "obj_set_immutable",
    "obj_set_fixed_quota",
    "segment_create",
    "segment_resize",
    "segment_read",
    "segment_write",
    "segment_len",
    "segment_copy",
    "as_create",
    "as_copy",
    "as_map",
    "as_unmap",
    "self_set_as",
    "page_fault",
    "thread_create",
    "self_local_segment",
    "self_halt",
    "thread_alert",
    "self_take_alert",
    "thread_get_label",
    "gate_create",
    "gate_enter",
    "gate_clearance",
    "category_bind_remote",
    "category_get_remote",
    "category_resolve_remote",
    "net_mac",
    "net_transmit",
    "net_receive",
    "persist_put",
    "persist_read",
    "persist_delete",
    "persist_scan",
    "persist_sync",
    "persist_get_label",
    "segment_watch",
];

impl Syscall {
    /// The call's index into [`SYSCALL_NAMES`] and the per-syscall stats.
    pub fn index(&self) -> usize {
        match self {
            Syscall::CreateCategory => 0,
            Syscall::SelfSetLabel { .. } => 1,
            Syscall::SelfSetClearance { .. } => 2,
            Syscall::SelfGetLabel => 3,
            Syscall::SelfGetClearance => 4,
            Syscall::ContainerCreate { .. } => 5,
            Syscall::ObjUnref { .. } => 6,
            Syscall::HardLink { .. } => 7,
            Syscall::ContainerQuotaAvail { .. } => 8,
            Syscall::ContainerGetParent { .. } => 9,
            Syscall::ContainerList { .. } => 10,
            Syscall::QuotaMove { .. } => 11,
            Syscall::ObjGetLabel { .. } => 12,
            Syscall::ObjGetInfo { .. } => 13,
            Syscall::ObjGetMetadata { .. } => 14,
            Syscall::ObjSetMetadata { .. } => 15,
            Syscall::ObjSetImmutable { .. } => 16,
            Syscall::ObjSetFixedQuota { .. } => 17,
            Syscall::SegmentCreate { .. } => 18,
            Syscall::SegmentResize { .. } => 19,
            Syscall::SegmentRead { .. } => 20,
            Syscall::SegmentWrite { .. } => 21,
            Syscall::SegmentLen { .. } => 22,
            Syscall::SegmentCopy { .. } => 23,
            Syscall::AsCreate { .. } => 24,
            Syscall::AsCopy { .. } => 25,
            Syscall::AsMap { .. } => 26,
            Syscall::AsUnmap { .. } => 27,
            Syscall::SelfSetAs { .. } => 28,
            Syscall::PageFault { .. } => 29,
            Syscall::ThreadCreate { .. } => 30,
            Syscall::SelfLocalSegment => 31,
            Syscall::SelfHalt => 32,
            Syscall::ThreadAlert { .. } => 33,
            Syscall::SelfTakeAlert => 34,
            Syscall::ThreadGetLabel { .. } => 35,
            Syscall::GateCreate { .. } => 36,
            Syscall::GateEnter { .. } => 37,
            Syscall::GateClearance { .. } => 38,
            Syscall::CategoryBindRemote { .. } => 39,
            Syscall::CategoryGetRemote { .. } => 40,
            Syscall::CategoryResolveRemote { .. } => 41,
            Syscall::NetMac { .. } => 42,
            Syscall::NetTransmit { .. } => 43,
            Syscall::NetReceive { .. } => 44,
            Syscall::PersistPut { .. } => 45,
            Syscall::PersistRead { .. } => 46,
            Syscall::PersistDelete { .. } => 47,
            Syscall::PersistScan { .. } => 48,
            Syscall::PersistSync { .. } => 49,
            Syscall::PersistGetLabel { .. } => 50,
            Syscall::SegmentWatch { .. } => 51,
        }
    }

    /// The call's name (stable, used in traces and stats dumps).
    pub fn name(&self) -> &'static str {
        SYSCALL_NAMES[self.index()]
    }
}

/// The typed result of a successful [`Kernel::dispatch`].
#[derive(Clone, Debug, PartialEq)]
pub enum SyscallResult {
    /// The call returns nothing.
    Unit,
    /// A freshly allocated category.
    Category(Category),
    /// A label (thread label, clearance, object label).
    Label(Label),
    /// An object ID (created object, parent container, local segment).
    ObjectId(ObjectId),
    /// A plain number (quota, segment length).
    U64(u64),
    /// A list of object IDs (container listing).
    ObjectIds(Vec<ObjectId>),
    /// Object type, description and quota (`obj_get_info`).
    Info {
        /// The object's type.
        object_type: ObjectType,
        /// The object's descriptive string.
        descrip: String,
        /// The object's quota.
        quota: u64,
    },
    /// A 64-byte metadata area.
    Metadata([u8; METADATA_LEN]),
    /// Raw bytes (segment reads).
    Bytes(Vec<u8>),
    /// A resolved page fault.
    PageFault(PageFaultResolution),
    /// The outcome of a gate entry.
    GateEntry(GateEntryResult),
    /// An alert, if one was pending.
    Alert(Option<Alert>),
    /// A category's global name, if bound.
    RemoteName(Option<RemoteCategoryName>),
    /// The local category a global name resolves to, if any.
    ResolvedCategory(Option<Category>),
    /// A device MAC address.
    Mac([u8; 6]),
    /// A received frame, if one was queued.
    Frame(Option<Vec<u8>>),
    /// Persist records from a range scan: `(key, payload)` pairs.
    Records(Vec<(u64, Vec<u8>)>),
}

impl SyscallResult {
    /// Unwraps an [`ObjectId`] result; panics on any other variant.
    /// Dispatch guarantees the variant matches the submitted call, so the
    /// panic marks a caller/completion pairing bug, not a runtime error.
    pub fn into_object_id(self) -> ObjectId {
        match self {
            SyscallResult::ObjectId(id) => id,
            other => panic!("expected an ObjectId completion, got {other:?}"),
        }
    }

    /// Unwraps a [`Label`] result; panics on any other variant.
    pub fn into_label(self) -> Label {
        match self {
            SyscallResult::Label(l) => l,
            other => panic!("expected a Label completion, got {other:?}"),
        }
    }

    /// Unwraps a [`Category`] result; panics on any other variant.
    pub fn into_category(self) -> Category {
        match self {
            SyscallResult::Category(c) => c,
            other => panic!("expected a Category completion, got {other:?}"),
        }
    }

    /// Unwraps a byte-vector result; panics on any other variant.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            SyscallResult::Bytes(b) => b,
            other => panic!("expected a Bytes completion, got {other:?}"),
        }
    }

    /// Unwraps a plain-number result; panics on any other variant.
    pub fn into_u64(self) -> u64 {
        match self {
            SyscallResult::U64(v) => v,
            other => panic!("expected a U64 completion, got {other:?}"),
        }
    }

    /// Unwraps a received-frame result; panics on any other variant.
    pub fn into_frame(self) -> Option<Vec<u8>> {
        match self {
            SyscallResult::Frame(f) => f,
            other => panic!("expected a Frame completion, got {other:?}"),
        }
    }

    /// Unwraps a persist-scan result; panics on any other variant.
    pub fn into_records(self) -> Vec<(u64, Vec<u8>)> {
        match self {
            SyscallResult::Records(r) => r,
            other => panic!("expected a Records completion, got {other:?}"),
        }
    }
}

/// Per-syscall invocation and error counters maintained by
/// [`Kernel::dispatch`].
///
/// Unlike [`SyscallStats`](crate::syscall::SyscallStats) (which aggregates
/// kernel activity wherever it originates, including direct `sys_*` calls in
/// kernel unit tests), these counters see exactly the trapped stream — one
/// increment per [`Kernel::dispatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchStats {
    /// Invocations per syscall, indexed like [`SYSCALL_NAMES`].
    pub invocations: [u64; SYSCALL_COUNT],
    /// Errors per syscall, indexed like [`SYSCALL_NAMES`].
    pub errors: [u64; SYSCALL_COUNT],
    /// Boundary crossings: submission batches drained (a single `trap_*`
    /// call is a 1-entry batch).
    pub batches: u64,
    /// Total submission entries across all batches (syscalls plus handle
    /// operations).
    pub batch_entries: u64,
    /// Histogram of batch sizes; bucket boundaries are
    /// [`BATCH_HIST_BUCKETS`].
    pub batch_size_hist: Histogram<{ BATCH_HIST_BUCKETS.len() }>,
    /// Audit-trace records evicted from the bounded ring before anyone
    /// read them — silent loss of audit history.  The dispatch-equivalence
    /// tests assert this stays zero when the trace is sized to the run.
    pub trace_dropped: u64,
    /// Capability handles installed.
    pub handle_opens: u64,
    /// Capability handles explicitly closed.
    pub handle_closes: u64,
    /// Capability handles revoked by `obj_unref`/deallocation.
    pub handle_revocations: u64,
    /// Handle-encoded syscall arguments resolved at dispatch (how often
    /// the hot path named objects by handle instead of raw entry).
    pub handle_resolutions: u64,
    /// Handle-open requests satisfied by an already-installed handle for
    /// the same container link (the fd hot path's steady state).
    pub handle_reuses: u64,
}

/// Upper bounds (inclusive) of the batch-size histogram buckets; the last
/// bucket is open-ended.  The edges live in `histar-obs` so the dispatch
/// stats and the I/O benchmarks bucket identically.
pub use histar_obs::BATCH_SIZE_EDGES as BATCH_HIST_BUCKETS;

impl Default for DispatchStats {
    fn default() -> DispatchStats {
        DispatchStats {
            invocations: [0; SYSCALL_COUNT],
            errors: [0; SYSCALL_COUNT],
            batches: 0,
            batch_entries: 0,
            batch_size_hist: Histogram::new(&BATCH_HIST_BUCKETS),
            trace_dropped: 0,
            handle_opens: 0,
            handle_closes: 0,
            handle_revocations: 0,
            handle_resolutions: 0,
            handle_reuses: 0,
        }
    }
}

impl DispatchStats {
    /// Total dispatched calls.
    pub fn total(&self) -> u64 {
        self.invocations.iter().sum()
    }

    /// Total dispatched calls that returned an error.
    pub fn total_errors(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// Invocation count for one syscall by name; `None` for unknown names.
    pub fn count(&self, name: &str) -> Option<u64> {
        SYSCALL_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.invocations[i])
    }

    /// `(name, invocations, errors)` for every syscall that was invoked at
    /// least once, in ABI order.
    pub fn nonzero(&self) -> Vec<(&'static str, u64, u64)> {
        (0..SYSCALL_COUNT)
            .filter(|&i| self.invocations[i] > 0)
            .map(|i| (SYSCALL_NAMES[i], self.invocations[i], self.errors[i]))
            .collect()
    }

    /// The histogram bucket a batch of `size` entries falls into.
    pub fn batch_bucket(size: u64) -> usize {
        Histogram::new(&BATCH_HIST_BUCKETS).bucket_of(size)
    }

    /// Human-readable label for histogram bucket `i` (e.g. `"3-4"`).
    pub fn batch_bucket_label(i: usize) -> String {
        Histogram::new(&BATCH_HIST_BUCKETS).bucket_label(i)
    }

    /// Mean submission-batch size (1.0 when everything was single-call).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_entries as f64 / self.batches as f64
        }
    }

    /// Amortized boundary cost per entry, in nanoseconds, given the full
    /// trap cost and the batched-entry decode cost: every batch pays
    /// `trap_ns` once and `entry_ns` for each further entry.
    pub fn amortized_trap_ns(&self, trap_ns: u64, entry_ns: u64) -> f64 {
        if self.batch_entries == 0 {
            return trap_ns as f64;
        }
        let total = self.batches * trap_ns + (self.batch_entries - self.batches) * entry_ns;
        total as f64 / self.batch_entries as f64
    }

    pub(crate) fn record_batch(&mut self, entries: u64) {
        if entries == 0 {
            return;
        }
        self.batches += 1;
        self.batch_entries += entries;
        self.batch_size_hist.record(entries);
    }

    /// Applies `op` to every counter pair of `self` and `other` — the one
    /// place that enumerates the struct's fields, so `since`/`merge` can
    /// never drift apart when a counter is added.
    fn zip_with(&self, other: &DispatchStats, op: impl Fn(u64, u64) -> u64) -> DispatchStats {
        let mut out = DispatchStats::default();
        for i in 0..SYSCALL_COUNT {
            out.invocations[i] = op(self.invocations[i], other.invocations[i]);
            out.errors[i] = op(self.errors[i], other.errors[i]);
        }
        out.batch_size_hist = self.batch_size_hist.zip_with(&other.batch_size_hist, &op);
        out.trace_dropped = op(self.trace_dropped, other.trace_dropped);
        out.batches = op(self.batches, other.batches);
        out.batch_entries = op(self.batch_entries, other.batch_entries);
        out.handle_opens = op(self.handle_opens, other.handle_opens);
        out.handle_closes = op(self.handle_closes, other.handle_closes);
        out.handle_revocations = op(self.handle_revocations, other.handle_revocations);
        out.handle_resolutions = op(self.handle_resolutions, other.handle_resolutions);
        out.handle_reuses = op(self.handle_reuses, other.handle_reuses);
        out
    }

    /// Difference between two snapshots (`self - earlier`).
    pub fn since(&self, earlier: &DispatchStats) -> DispatchStats {
        self.zip_with(earlier, |a, b| a - b)
    }

    /// Element-wise sum of two counter sets (e.g. combining the nodes of a
    /// fabric into one histogram).
    pub fn merge(&self, other: &DispatchStats) -> DispatchStats {
        self.zip_with(other, |a, b| a + b)
    }
}

impl histar_obs::MetricSource for DispatchStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("dispatch.calls", self.total());
        set.counter("dispatch.errors", self.total_errors());
        set.counter("dispatch.batches", self.batches);
        set.counter("dispatch.batch_entries", self.batch_entries);
        set.counter("dispatch.trace_dropped", self.trace_dropped);
        set.counter("dispatch.handle_opens", self.handle_opens);
        set.counter("dispatch.handle_closes", self.handle_closes);
        set.counter("dispatch.handle_revocations", self.handle_revocations);
        set.counter("dispatch.handle_resolutions", self.handle_resolutions);
        set.counter("dispatch.handle_reuses", self.handle_reuses);
        set.histogram("dispatch.batch_size", &self.batch_size_hist);
    }
}

/// One entry of the syscall audit trace: which thread trapped, with what
/// call, at what simulated time, and whether it succeeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic sequence number (survives ring-buffer eviction, so gaps
    /// are detectable).
    pub seq: u64,
    /// Simulated time at call completion, in nanoseconds since boot.
    pub tick: u64,
    /// The calling thread.
    pub tid: ObjectId,
    /// The syscall's name (from [`SYSCALL_NAMES`]).
    pub syscall: &'static str,
    /// Whether the call succeeded.
    pub ok: bool,
}

/// A bounded ring buffer of [`TraceRecord`]s — the machine's auditable,
/// replayable syscall stream.  When full, the oldest record is dropped (and
/// counted), so enabling tracing never grows memory without bound.
#[derive(Clone, Debug, Default)]
pub struct SyscallTrace {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    records: VecDeque<TraceRecord>,
}

impl SyscallTrace {
    /// Creates an empty trace holding at most `capacity` records.
    pub fn new(capacity: usize) -> SyscallTrace {
        SyscallTrace {
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            records: VecDeque::with_capacity(capacity.clamp(1, 4096)),
        }
    }

    /// Appends a record, evicting the oldest if full.  Returns whether a
    /// record was evicted, so the dispatcher can mirror silent audit loss
    /// into [`DispatchStats::trace_dropped`].
    fn push(&mut self, tick: u64, tid: ObjectId, syscall: &'static str, ok: bool) -> bool {
        let evicted = self.records.len() == self.capacity;
        if evicted {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            seq: self.next_seq,
            tick,
            tid,
            syscall,
            ok,
        });
        self.next_seq += 1;
        evicted
    }

    /// The buffered records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever appended.
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }
}

impl Kernel {
    /// Executes one trapped system call on behalf of thread `tid`.
    ///
    /// Since the batched ABI landed, this is a shim over a 1-entry
    /// submission batch: the call crosses the boundary alone, pays the
    /// full trap cost, and its result is returned directly instead of
    /// being pushed onto the completion queue.  Per-call label checks,
    /// [`DispatchStats`] counters and audit-trace records are identical
    /// either way.
    pub fn dispatch(
        &mut self,
        tid: ObjectId,
        call: Syscall,
    ) -> Result<SyscallResult, SyscallError> {
        self.begin_batch();
        let result = self.dispatch_one(tid, call);
        self.end_batch();
        self.dispatch_stats_mut().record_batch(1);
        result
    }

    /// Drains one submission batch for thread `tid`: every entry executes
    /// in submission order against the same label checks, per-syscall
    /// counters and audit trace as a one-per-trap stream, but the whole
    /// batch pays the kernel entry/exit (trap) cost once — each entry
    /// after the first is charged only the cheap decode cost.  One
    /// [`Completion`] per entry is pushed onto the thread's completion
    /// queue, in order, once the batch finishes.  A batch does not stop on
    /// errors (each entry's completion carries its own result), so entries
    /// with user-level data dependencies belong in separate batches.
    ///
    /// Returns the number of entries processed.  If the batch itself tears
    /// the calling thread down (an entry unrefs the thread's last link),
    /// its completions die with the thread — nobody is left to reap them.
    pub fn dispatch_batch<I>(&mut self, tid: ObjectId, entries: I) -> usize
    where
        I: IntoIterator<Item = SqEntry>,
    {
        let done = self.dispatch_batch_collect(tid, entries);
        let n = done.len();
        // A deallocated thread's queue was dropped by `dealloc`; do not
        // resurrect it for completions nobody can reap.
        if self.thread_state(tid).is_ok() {
            for completion in done {
                self.push_completion(tid, completion);
            }
        }
        n
    }

    /// The batch execution loop, returning the completions directly
    /// instead of routing them through the thread's completion queue —
    /// the queue can vanish mid-batch if an entry deallocates the calling
    /// thread, so synchronous callers take results from here.
    fn dispatch_batch_collect<I>(&mut self, tid: ObjectId, entries: I) -> Vec<Completion>
    where
        I: IntoIterator<Item = SqEntry>,
    {
        self.begin_batch();
        let span_start = self.recorder().is_enabled().then(|| self.now().as_nanos());
        let mut done = Vec::new();
        for SqEntry { user_data, op } in entries {
            let kind = match op {
                SqOp::Call(call) => CompletionKind::Call(self.dispatch_one(tid, call)),
                SqOp::HandleOpen { entry } => {
                    CompletionKind::HandleOpened(self.handle_open(tid, entry))
                }
                SqOp::HandleClose { handle } => {
                    CompletionKind::HandleClosed(self.handle_close(tid, handle))
                }
            };
            done.push(Completion { user_data, kind });
        }
        self.end_batch();
        self.dispatch_stats_mut().record_batch(done.len() as u64);
        if let Some(start) = span_start {
            let batch_id = self.dispatch_stats().batches;
            self.recorder().record(Span {
                cat: "dispatch",
                name: "batch",
                start,
                end: self.now().as_nanos(),
                tid: tid.raw(),
                seq: batch_id,
            });
        }
        done
    }

    /// Drains a user-side [`SubmissionQueue`] in one boundary crossing.
    /// Completions land on `tid`'s completion queue and are reaped with
    /// [`Kernel::reap_completion`]/[`Kernel::reap_completions`].
    pub fn submit(&mut self, tid: ObjectId, sq: &mut SubmissionQueue) -> usize {
        self.dispatch_batch(tid, sq.drain())
    }

    /// Submits `calls` as one batch and returns their results directly,
    /// in submission order — the synchronous multi-call pattern library
    /// hot paths use for argument spills.  The thread's completion queue
    /// is bypassed entirely, so completions already queued (e.g. alert
    /// notifications, or ones pushed by an alert *inside* this batch)
    /// stay queued, and a batch that tears down the calling thread still
    /// reports every entry's result.
    pub fn submit_calls(
        &mut self,
        tid: ObjectId,
        calls: Vec<Syscall>,
    ) -> Vec<Result<SyscallResult, SyscallError>> {
        let entries: Vec<SqEntry> = calls
            .into_iter()
            .enumerate()
            .map(|(i, call)| SqEntry {
                user_data: i as u64,
                op: SqOp::Call(call),
            })
            .collect();
        self.dispatch_batch_collect(tid, entries)
            .into_iter()
            .map(Completion::into_call_result)
            .collect()
    }

    /// One submitted entry, executed under the current batch's cost
    /// accounting: handle-encoded arguments are resolved against `tid`'s
    /// handle table, the per-syscall counters are bumped, the `sys_*`
    /// implementation runs, and the audit trace is appended.
    fn dispatch_one(
        &mut self,
        tid: ObjectId,
        call: Syscall,
    ) -> Result<SyscallResult, SyscallError> {
        let mut call = call;
        let index = call.index();
        let name = call.name();
        let span_start = self.recorder().is_enabled().then(|| self.now().as_nanos());
        self.dispatch_stats_mut().invocations[index] += 1;
        self.note_thread_syscall(tid);
        let result = match self.resolve_handle_args(tid, &mut call) {
            Ok(()) => self.dispatch_inner(tid, call),
            Err(e) => Err(e),
        };
        if result.is_err() {
            self.dispatch_stats_mut().errors[index] += 1;
        }
        let tick = self.now().as_nanos();
        let ok = result.is_ok();
        if let Some(trace) = self.trace_mut() {
            if trace.push(tick, tid, name, ok) {
                self.dispatch_stats_mut().trace_dropped += 1;
            }
        }
        if let Some(start) = span_start {
            let seq = self.next_dispatch_seq();
            self.recorder().record(Span {
                cat: "dispatch",
                name,
                start,
                end: tick,
                tid: tid.raw(),
                seq,
            });
        }
        result
    }

    /// Substitutes handle-encoded `ContainerEntry` arguments with the
    /// entries installed in `tid`'s handle table.  A stale or unknown
    /// handle fails the call with [`SyscallError::BadHandle`] before any
    /// state is touched; the substituted entry is still re-validated by
    /// the `sys_*` implementation like any raw entry, so handles add a
    /// naming indirection, never a checking shortcut.
    fn resolve_handle_args(
        &mut self,
        tid: ObjectId,
        call: &mut Syscall,
    ) -> Result<(), SyscallError> {
        use Syscall as S;
        let mut args: [Option<&mut ContainerEntry>; 2] = [None, None];
        match call {
            S::ObjUnref { entry }
            | S::HardLink { entry, .. }
            | S::ObjGetLabel { entry }
            | S::ObjGetInfo { entry }
            | S::ObjGetMetadata { entry }
            | S::ObjSetMetadata { entry, .. }
            | S::ObjSetImmutable { entry }
            | S::ObjSetFixedQuota { entry }
            | S::SegmentResize { entry, .. }
            | S::SegmentRead { entry, .. }
            | S::SegmentWrite { entry, .. }
            | S::SegmentLen { entry }
            | S::SegmentWatch { entry } => args[0] = Some(entry),
            S::SegmentCopy { src, .. } | S::AsCopy { src, .. } => args[0] = Some(src),
            S::AsMap { aspace, mapping } => {
                args[0] = Some(aspace);
                args[1] = Some(&mut mapping.segment);
            }
            S::AsUnmap { aspace, .. } | S::SelfSetAs { aspace } => args[0] = Some(aspace),
            S::ThreadAlert { target, .. } | S::ThreadGetLabel { target } => args[0] = Some(target),
            S::GateCreate { address_space, .. } => args[0] = address_space.as_mut(),
            S::GateEnter { gate, .. } | S::GateClearance { gate } => args[0] = Some(gate),
            S::NetMac { device } | S::NetTransmit { device, .. } | S::NetReceive { device } => {
                args[0] = Some(device)
            }
            _ => {}
        }
        let mut resolved = 0;
        for entry in args.into_iter().flatten() {
            if let Some(h) = entry.as_handle() {
                *entry = self
                    .handle_entry(tid, h)
                    .ok_or(SyscallError::BadHandle(h.raw()))?;
                resolved += 1;
            }
        }
        self.dispatch_stats_mut().handle_resolutions += resolved;
        Ok(())
    }

    fn dispatch_inner(
        &mut self,
        tid: ObjectId,
        call: Syscall,
    ) -> Result<SyscallResult, SyscallError> {
        use Syscall as S;
        use SyscallResult as R;
        match call {
            S::CreateCategory => self.sys_create_category(tid).map(R::Category),
            S::SelfSetLabel { label } => self.sys_self_set_label(tid, label).map(|()| R::Unit),
            S::SelfSetClearance { clearance } => self
                .sys_self_set_clearance(tid, clearance)
                .map(|()| R::Unit),
            S::SelfGetLabel => self.sys_self_get_label(tid).map(R::Label),
            S::SelfGetClearance => self.sys_self_get_clearance(tid).map(R::Label),
            S::ContainerCreate {
                parent,
                label,
                descrip,
                avoid_types,
                quota,
            } => self
                .sys_container_create(tid, parent, label, &descrip, avoid_types, quota)
                .map(R::ObjectId),
            S::ObjUnref { entry } => self.sys_obj_unref(tid, entry).map(|()| R::Unit),
            S::HardLink { entry, dst } => self.sys_hard_link(tid, entry, dst).map(|()| R::Unit),
            S::ContainerQuotaAvail { container } => {
                self.sys_container_quota_avail(tid, container).map(R::U64)
            }
            S::ContainerGetParent { container } => self
                .sys_container_get_parent(tid, container)
                .map(R::ObjectId),
            S::ContainerList { container } => {
                self.sys_container_list(tid, container).map(R::ObjectIds)
            }
            S::QuotaMove {
                container,
                object,
                delta,
            } => self
                .sys_quota_move(tid, container, object, delta)
                .map(|()| R::Unit),
            S::ObjGetLabel { entry } => self.sys_obj_get_label(tid, entry).map(R::Label),
            S::ObjGetInfo { entry } => {
                self.sys_obj_get_info(tid, entry)
                    .map(|(object_type, descrip, quota)| R::Info {
                        object_type,
                        descrip,
                        quota,
                    })
            }
            S::ObjGetMetadata { entry } => self.sys_obj_get_metadata(tid, entry).map(R::Metadata),
            S::ObjSetMetadata { entry, metadata } => self
                .sys_obj_set_metadata(tid, entry, metadata)
                .map(|()| R::Unit),
            S::ObjSetImmutable { entry } => {
                self.sys_obj_set_immutable(tid, entry).map(|()| R::Unit)
            }
            S::ObjSetFixedQuota { entry } => {
                self.sys_obj_set_fixed_quota(tid, entry).map(|()| R::Unit)
            }
            S::SegmentCreate {
                container,
                label,
                len,
                descrip,
            } => self
                .sys_segment_create(tid, container, label, len, &descrip)
                .map(R::ObjectId),
            S::SegmentResize { entry, len } => {
                self.sys_segment_resize(tid, entry, len).map(|()| R::Unit)
            }
            S::SegmentRead { entry, offset, len } => {
                self.sys_segment_read(tid, entry, offset, len).map(R::Bytes)
            }
            S::SegmentWrite {
                entry,
                offset,
                data,
            } => self
                .sys_segment_write(tid, entry, offset, &data)
                .map(|()| R::Unit),
            S::SegmentLen { entry } => self.sys_segment_len(tid, entry).map(R::U64),
            S::SegmentWatch { entry } => self.sys_segment_watch(tid, entry).map(|()| R::Unit),
            S::SegmentCopy {
                src,
                dst_container,
                label,
                descrip,
            } => self
                .sys_segment_copy(tid, src, dst_container, label, &descrip)
                .map(R::ObjectId),
            S::AsCreate {
                container,
                label,
                descrip,
            } => self
                .sys_as_create(tid, container, label, &descrip)
                .map(R::ObjectId),
            S::AsCopy {
                src,
                dst_container,
                label,
                descrip,
            } => self
                .sys_as_copy(tid, src, dst_container, label, &descrip)
                .map(R::ObjectId),
            S::AsMap { aspace, mapping } => self.sys_as_map(tid, aspace, mapping).map(|()| R::Unit),
            S::AsUnmap { aspace, va } => self.sys_as_unmap(tid, aspace, va).map(|()| R::Unit),
            S::SelfSetAs { aspace } => self.sys_self_set_as(tid, aspace).map(|()| R::Unit),
            S::PageFault { va, write } => self.sys_page_fault(tid, va, write).map(R::PageFault),
            S::ThreadCreate {
                container,
                label,
                clearance,
                entry_point,
                descrip,
            } => self
                .sys_thread_create(tid, container, label, clearance, entry_point, &descrip)
                .map(R::ObjectId),
            S::SelfLocalSegment => self.sys_self_local_segment(tid).map(R::ObjectId),
            S::SelfHalt => self.sys_self_halt(tid).map(|()| R::Unit),
            S::ThreadAlert { target, code } => {
                self.sys_thread_alert(tid, target, code).map(|()| R::Unit)
            }
            S::SelfTakeAlert => self.sys_self_take_alert(tid).map(R::Alert),
            S::ThreadGetLabel { target } => self.sys_thread_get_label(tid, target).map(R::Label),
            S::GateCreate {
                container,
                label,
                clearance,
                address_space,
                entry_point,
                closure_args,
                descrip,
            } => self
                .sys_gate_create(
                    tid,
                    container,
                    label,
                    clearance,
                    address_space,
                    entry_point,
                    closure_args,
                    &descrip,
                )
                .map(R::ObjectId),
            S::GateEnter {
                gate,
                requested,
                requested_clearance,
                verify,
            } => self
                .sys_gate_enter(tid, gate, requested, requested_clearance, verify)
                .map(R::GateEntry),
            S::GateClearance { gate } => self.sys_gate_clearance(tid, gate).map(R::Label),
            S::CategoryBindRemote { category, name } => self
                .sys_category_bind_remote(tid, category, name)
                .map(|()| R::Unit),
            S::CategoryGetRemote { category } => self
                .sys_category_get_remote(tid, category)
                .map(R::RemoteName),
            S::CategoryResolveRemote { name } => self
                .sys_category_resolve_remote(tid, name)
                .map(R::ResolvedCategory),
            S::NetMac { device } => self.sys_net_mac(tid, device).map(R::Mac),
            S::NetTransmit { device, frame } => {
                self.sys_net_transmit(tid, device, frame).map(|()| R::Unit)
            }
            S::NetReceive { device } => self.sys_net_receive(tid, device).map(R::Frame),
            S::PersistPut {
                key,
                label,
                offset,
                data,
            } => self
                .sys_persist_put(tid, key, label, offset, &data)
                .map(|()| R::Unit),
            S::PersistRead { key, offset, len } => {
                self.sys_persist_read(tid, key, offset, len).map(R::Bytes)
            }
            S::PersistDelete { key } => self.sys_persist_delete(tid, key).map(|()| R::Unit),
            S::PersistScan { lo, hi, max } => {
                self.sys_persist_scan(tid, lo, hi, max).map(R::Records)
            }
            S::PersistSync { keys } => self.sys_persist_sync(tid, &keys).map(|()| R::Unit),
            S::PersistGetLabel { key } => self.sys_persist_get_label(tid, key).map(R::Label),
        }
    }
}

/// The `trap_*` calling convention: typed wrappers over [`Kernel::dispatch`].
///
/// Each method mirrors the corresponding `sys_*` signature exactly, but the
/// call crosses the dispatch boundary, so it is counted and traced.
impl Kernel {
    /// Traps `sys_create_category`.
    pub fn trap_create_category(&mut self, tid: ObjectId) -> Result<Category, SyscallError> {
        match self.dispatch(tid, Syscall::CreateCategory)? {
            SyscallResult::Category(c) => Ok(c),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_set_label`.
    pub fn trap_self_set_label(&mut self, tid: ObjectId, label: Label) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::SelfSetLabel { label })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_set_clearance`.
    pub fn trap_self_set_clearance(
        &mut self,
        tid: ObjectId,
        clearance: Label,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::SelfSetClearance { clearance })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_get_label`.
    pub fn trap_self_get_label(&mut self, tid: ObjectId) -> Result<Label, SyscallError> {
        match self.dispatch(tid, Syscall::SelfGetLabel)? {
            SyscallResult::Label(l) => Ok(l),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_get_clearance`.
    pub fn trap_self_get_clearance(&mut self, tid: ObjectId) -> Result<Label, SyscallError> {
        match self.dispatch(tid, Syscall::SelfGetClearance)? {
            SyscallResult::Label(l) => Ok(l),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_container_create`.
    pub fn trap_container_create(
        &mut self,
        tid: ObjectId,
        parent: ObjectId,
        label: Label,
        descrip: &str,
        avoid_types: u8,
        quota: u64,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::ContainerCreate {
                parent,
                label,
                descrip: descrip.to_string(),
                avoid_types,
                quota,
            },
        )? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_obj_unref`.
    pub fn trap_obj_unref(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::ObjUnref { entry })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_hard_link`.
    pub fn trap_hard_link(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        dst: ObjectId,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::HardLink { entry, dst })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_container_quota_avail`.
    pub fn trap_container_quota_avail(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
    ) -> Result<u64, SyscallError> {
        match self.dispatch(tid, Syscall::ContainerQuotaAvail { container })? {
            SyscallResult::U64(v) => Ok(v),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_container_get_parent`.
    pub fn trap_container_get_parent(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(tid, Syscall::ContainerGetParent { container })? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_container_list`.
    pub fn trap_container_list(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
    ) -> Result<Vec<ObjectId>, SyscallError> {
        match self.dispatch(tid, Syscall::ContainerList { container })? {
            SyscallResult::ObjectIds(ids) => Ok(ids),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_quota_move`.
    pub fn trap_quota_move(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        object: ObjectId,
        delta: i64,
    ) -> Result<(), SyscallError> {
        match self.dispatch(
            tid,
            Syscall::QuotaMove {
                container,
                object,
                delta,
            },
        )? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_obj_get_label`.
    pub fn trap_obj_get_label(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<Label, SyscallError> {
        match self.dispatch(tid, Syscall::ObjGetLabel { entry })? {
            SyscallResult::Label(l) => Ok(l),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_obj_get_info`.
    pub fn trap_obj_get_info(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(ObjectType, String, u64), SyscallError> {
        match self.dispatch(tid, Syscall::ObjGetInfo { entry })? {
            SyscallResult::Info {
                object_type,
                descrip,
                quota,
            } => Ok((object_type, descrip, quota)),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_obj_get_metadata`.
    pub fn trap_obj_get_metadata(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<[u8; METADATA_LEN], SyscallError> {
        match self.dispatch(tid, Syscall::ObjGetMetadata { entry })? {
            SyscallResult::Metadata(m) => Ok(m),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_obj_set_metadata`.
    pub fn trap_obj_set_metadata(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        metadata: [u8; METADATA_LEN],
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::ObjSetMetadata { entry, metadata })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_obj_set_immutable`.
    pub fn trap_obj_set_immutable(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::ObjSetImmutable { entry })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_obj_set_fixed_quota`.
    pub fn trap_obj_set_fixed_quota(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::ObjSetFixedQuota { entry })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_segment_create`.
    pub fn trap_segment_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        len: u64,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::SegmentCreate {
                container,
                label,
                len,
                descrip: descrip.to_string(),
            },
        )? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_segment_resize`.
    pub fn trap_segment_resize(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        len: u64,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::SegmentResize { entry, len })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_segment_read`.
    pub fn trap_segment_read(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, SyscallError> {
        match self.dispatch(tid, Syscall::SegmentRead { entry, offset, len })? {
            SyscallResult::Bytes(b) => Ok(b),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_segment_write`.
    pub fn trap_segment_write(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
        offset: u64,
        data: &[u8],
    ) -> Result<(), SyscallError> {
        match self.dispatch(
            tid,
            Syscall::SegmentWrite {
                entry,
                offset,
                data: data.to_vec(),
            },
        )? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_segment_watch`.
    pub fn trap_segment_watch(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::SegmentWatch { entry })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_segment_len`.
    pub fn trap_segment_len(
        &mut self,
        tid: ObjectId,
        entry: ContainerEntry,
    ) -> Result<u64, SyscallError> {
        match self.dispatch(tid, Syscall::SegmentLen { entry })? {
            SyscallResult::U64(v) => Ok(v),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_segment_copy`.
    pub fn trap_segment_copy(
        &mut self,
        tid: ObjectId,
        src: ContainerEntry,
        dst_container: ObjectId,
        label: Label,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::SegmentCopy {
                src,
                dst_container,
                label,
                descrip: descrip.to_string(),
            },
        )? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_as_create`.
    pub fn trap_as_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::AsCreate {
                container,
                label,
                descrip: descrip.to_string(),
            },
        )? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_as_copy`.
    pub fn trap_as_copy(
        &mut self,
        tid: ObjectId,
        src: ContainerEntry,
        dst_container: ObjectId,
        label: Label,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::AsCopy {
                src,
                dst_container,
                label,
                descrip: descrip.to_string(),
            },
        )? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_as_map`.
    pub fn trap_as_map(
        &mut self,
        tid: ObjectId,
        aspace: ContainerEntry,
        mapping: Mapping,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::AsMap { aspace, mapping })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_as_unmap`.
    pub fn trap_as_unmap(
        &mut self,
        tid: ObjectId,
        aspace: ContainerEntry,
        va: u64,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::AsUnmap { aspace, va })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_set_as`.
    pub fn trap_self_set_as(
        &mut self,
        tid: ObjectId,
        aspace: ContainerEntry,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::SelfSetAs { aspace })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_page_fault`.
    pub fn trap_page_fault(
        &mut self,
        tid: ObjectId,
        va: u64,
        write: bool,
    ) -> Result<PageFaultResolution, SyscallError> {
        match self.dispatch(tid, Syscall::PageFault { va, write })? {
            SyscallResult::PageFault(r) => Ok(r),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_thread_create`.
    pub fn trap_thread_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        clearance: Label,
        entry_point: u64,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::ThreadCreate {
                container,
                label,
                clearance,
                entry_point,
                descrip: descrip.to_string(),
            },
        )? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_local_segment`.
    pub fn trap_self_local_segment(&mut self, tid: ObjectId) -> Result<ObjectId, SyscallError> {
        match self.dispatch(tid, Syscall::SelfLocalSegment)? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_halt`.
    pub fn trap_self_halt(&mut self, tid: ObjectId) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::SelfHalt)? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_thread_alert`.
    pub fn trap_thread_alert(
        &mut self,
        tid: ObjectId,
        target: ContainerEntry,
        code: u64,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::ThreadAlert { target, code })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_self_take_alert`.
    pub fn trap_self_take_alert(&mut self, tid: ObjectId) -> Result<Option<Alert>, SyscallError> {
        match self.dispatch(tid, Syscall::SelfTakeAlert)? {
            SyscallResult::Alert(a) => Ok(a),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_thread_get_label`.
    pub fn trap_thread_get_label(
        &mut self,
        tid: ObjectId,
        target: ContainerEntry,
    ) -> Result<Label, SyscallError> {
        match self.dispatch(tid, Syscall::ThreadGetLabel { target })? {
            SyscallResult::Label(l) => Ok(l),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_gate_create`.
    #[allow(clippy::too_many_arguments)]
    pub fn trap_gate_create(
        &mut self,
        tid: ObjectId,
        container: ObjectId,
        label: Label,
        clearance: Label,
        address_space: Option<ContainerEntry>,
        entry_point: u64,
        closure_args: Vec<u64>,
        descrip: &str,
    ) -> Result<ObjectId, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::GateCreate {
                container,
                label,
                clearance,
                address_space,
                entry_point,
                closure_args,
                descrip: descrip.to_string(),
            },
        )? {
            SyscallResult::ObjectId(id) => Ok(id),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_gate_enter`.
    pub fn trap_gate_enter(
        &mut self,
        tid: ObjectId,
        gate: ContainerEntry,
        requested: Label,
        requested_clearance: Label,
        verify: Label,
    ) -> Result<GateEntryResult, SyscallError> {
        match self.dispatch(
            tid,
            Syscall::GateEnter {
                gate,
                requested,
                requested_clearance,
                verify,
            },
        )? {
            SyscallResult::GateEntry(r) => Ok(r),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_gate_clearance`.
    pub fn trap_gate_clearance(
        &mut self,
        tid: ObjectId,
        gate: ContainerEntry,
    ) -> Result<Label, SyscallError> {
        match self.dispatch(tid, Syscall::GateClearance { gate })? {
            SyscallResult::Label(l) => Ok(l),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_category_bind_remote`.
    pub fn trap_category_bind_remote(
        &mut self,
        tid: ObjectId,
        category: Category,
        name: RemoteCategoryName,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::CategoryBindRemote { category, name })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_category_get_remote`.
    pub fn trap_category_get_remote(
        &mut self,
        tid: ObjectId,
        category: Category,
    ) -> Result<Option<RemoteCategoryName>, SyscallError> {
        match self.dispatch(tid, Syscall::CategoryGetRemote { category })? {
            SyscallResult::RemoteName(n) => Ok(n),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_category_resolve_remote`.
    pub fn trap_category_resolve_remote(
        &mut self,
        tid: ObjectId,
        name: RemoteCategoryName,
    ) -> Result<Option<Category>, SyscallError> {
        match self.dispatch(tid, Syscall::CategoryResolveRemote { name })? {
            SyscallResult::ResolvedCategory(c) => Ok(c),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_net_mac`.
    pub fn trap_net_mac(
        &mut self,
        tid: ObjectId,
        device: ContainerEntry,
    ) -> Result<[u8; 6], SyscallError> {
        match self.dispatch(tid, Syscall::NetMac { device })? {
            SyscallResult::Mac(m) => Ok(m),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_net_transmit`.
    pub fn trap_net_transmit(
        &mut self,
        tid: ObjectId,
        device: ContainerEntry,
        frame: Vec<u8>,
    ) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::NetTransmit { device, frame })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_net_receive`.
    pub fn trap_net_receive(
        &mut self,
        tid: ObjectId,
        device: ContainerEntry,
    ) -> Result<Option<Vec<u8>>, SyscallError> {
        match self.dispatch(tid, Syscall::NetReceive { device })? {
            SyscallResult::Frame(f) => Ok(f),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_persist_put`.
    pub fn trap_persist_put(
        &mut self,
        tid: ObjectId,
        key: u64,
        label: Option<Label>,
        offset: u64,
        data: &[u8],
    ) -> Result<(), SyscallError> {
        match self.dispatch(
            tid,
            Syscall::PersistPut {
                key,
                label,
                offset,
                data: data.to_vec(),
            },
        )? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_persist_read`.
    pub fn trap_persist_read(
        &mut self,
        tid: ObjectId,
        key: u64,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, SyscallError> {
        match self.dispatch(tid, Syscall::PersistRead { key, offset, len })? {
            SyscallResult::Bytes(b) => Ok(b),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_persist_delete`.
    pub fn trap_persist_delete(&mut self, tid: ObjectId, key: u64) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::PersistDelete { key })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_persist_scan`.
    pub fn trap_persist_scan(
        &mut self,
        tid: ObjectId,
        lo: u64,
        hi: u64,
        max: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, SyscallError> {
        match self.dispatch(tid, Syscall::PersistScan { lo, hi, max })? {
            SyscallResult::Records(r) => Ok(r),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_persist_sync`.
    pub fn trap_persist_sync(&mut self, tid: ObjectId, keys: Vec<u64>) -> Result<(), SyscallError> {
        match self.dispatch(tid, Syscall::PersistSync { keys })? {
            SyscallResult::Unit => Ok(()),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }

    /// Traps `sys_persist_get_label`.
    pub fn trap_persist_get_label(
        &mut self,
        tid: ObjectId,
        key: u64,
    ) -> Result<Label, SyscallError> {
        match self.dispatch(tid, Syscall::PersistGetLabel { key })? {
            SyscallResult::Label(l) => Ok(l),
            _ => unreachable!("dispatch result variant mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_label::Level;

    fn boot() -> (Kernel, ObjectId) {
        let mut k = Kernel::new(42, None);
        let root = k.root_container();
        let tid = k
            .bootstrap_thread(
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                "init",
            )
            .unwrap();
        (k, tid)
    }

    #[test]
    fn dispatch_counts_per_syscall() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let seg = k
            .trap_segment_create(tid, root, Label::unrestricted(), 64, "s")
            .unwrap();
        let entry = ContainerEntry::new(root, seg);
        k.trap_segment_write(tid, entry, 0, b"hello").unwrap();
        assert_eq!(k.trap_segment_read(tid, entry, 0, 5).unwrap(), b"hello");
        // A failing call is counted as both an invocation and an error.
        assert!(k.trap_segment_read(tid, entry, 60, 100).is_err());

        let stats = k.dispatch_stats();
        assert_eq!(stats.count("segment_create"), Some(1));
        assert_eq!(stats.count("segment_write"), Some(1));
        assert_eq!(stats.count("segment_read"), Some(2));
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.total_errors(), 1);
        assert!(stats
            .nonzero()
            .iter()
            .any(|(n, i, e)| *n == "segment_read" && *i == 2 && *e == 1));
    }

    #[test]
    fn dispatch_equals_direct_call() {
        let (mut ka, tida) = boot();
        let (mut kb, tidb) = boot();
        let ra = ka.sys_create_category(tida).unwrap();
        let rb = kb.trap_create_category(tidb).unwrap();
        assert_eq!(ra, rb, "same seed, same allocation stream");
        assert_eq!(
            ka.thread_label(tida).unwrap(),
            kb.thread_label(tidb).unwrap()
        );
        // The aggregate kernel counters agree; only the dispatch counters
        // differ (the direct call bypasses the trap boundary).
        assert_eq!(ka.stats(), kb.stats());
        assert_eq!(ka.dispatch_stats().total(), 0);
        assert_eq!(kb.dispatch_stats().total(), 1);
    }

    #[test]
    fn trace_ring_buffer_is_bounded_and_ordered() {
        let (mut k, tid) = boot();
        k.enable_syscall_trace(4);
        for _ in 0..6 {
            let _ = k.trap_self_get_label(tid);
        }
        let trace = k.syscall_trace().expect("trace enabled");
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 2);
        assert_eq!(trace.total_recorded(), 6);
        // Evictions are mirrored into the dispatch stats so monitoring can
        // spot silent audit loss without holding a reference to the trace.
        assert_eq!(k.dispatch_stats().trace_dropped, 2);
        let seqs: Vec<u64> = trace.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        for r in trace.records() {
            assert_eq!(r.syscall, "self_get_label");
            assert_eq!(r.tid, tid);
            assert!(r.ok);
        }
        k.disable_syscall_trace();
        assert!(k.syscall_trace().is_none());
    }

    #[test]
    fn trace_records_failures() {
        let (mut k, tid) = boot();
        k.enable_syscall_trace(16);
        let bogus = ContainerEntry::new(k.root_container(), ObjectId::from_raw(0x1234));
        assert!(k.trap_segment_read(tid, bogus, 0, 1).is_err());
        let rec = *k.syscall_trace().unwrap().records().next().unwrap();
        assert_eq!(rec.syscall, "segment_read");
        assert!(!rec.ok);
    }

    #[test]
    fn syscall_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = SYSCALL_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SYSCALL_COUNT, "names must be unique");
        assert_eq!(Syscall::CreateCategory.name(), "create_category");
        assert_eq!(
            Syscall::NetReceive {
                device: ContainerEntry::self_entry(ObjectId::from_raw(1))
            }
            .name(),
            "net_receive"
        );
        assert_eq!(
            Syscall::SegmentWatch {
                entry: ContainerEntry::self_entry(ObjectId::from_raw(1))
            }
            .index(),
            SYSCALL_COUNT - 1
        );
    }

    #[test]
    fn every_result_variant_is_exercised() {
        let (mut k, tid) = boot();
        let root = k.root_container();
        let cat = k.trap_create_category(tid).unwrap();
        let lbl = Label::builder().own(cat).build();
        let _ = lbl;
        let seg = k
            .trap_segment_create(tid, root, Label::unrestricted(), 32, "s")
            .unwrap();
        let se = ContainerEntry::new(root, seg);
        assert_eq!(k.trap_segment_len(tid, se).unwrap(), 32);
        let (ty, descrip, quota) = k.trap_obj_get_info(tid, se).unwrap();
        assert_eq!(ty, ObjectType::Segment);
        assert_eq!(descrip, "s");
        assert!(quota >= 32);
        assert!(k.trap_container_list(tid, root).unwrap().contains(&seg));
        assert_eq!(k.trap_self_take_alert(tid).unwrap(), None);
        assert_eq!(k.trap_category_get_remote(tid, cat).unwrap(), None);
        let meta = k.trap_obj_get_metadata(tid, se).unwrap();
        assert_eq!(meta, [0u8; METADATA_LEN]);
        // Self-label round trip through the dispatcher.
        let l = k.trap_self_get_label(tid).unwrap();
        assert!(l.owns(cat));
        assert_eq!(
            k.trap_self_get_clearance(tid).unwrap().level(cat),
            Level::L3
        );
    }
}
