//! A complete simulated HiStar machine: kernel + single-level store + clock.
//!
//! The machine owns the pieces a real installation would have — the kernel,
//! the disk with its single-level store, the network device, and the machine
//! clock — and provides the boot, snapshot and crash-recovery paths.  On
//! bootup the entire system state is restored from the most recent on-disk
//! snapshot (§3); there are no boot scripts.

use crate::bodies::DeviceBody;
use crate::kernel::{KObject, Kernel};
use crate::object::ObjectId;
use crate::serialize::{decode_object, encode_object};
use crate::syscall::SyscallError;
use histar_label::Label;
use histar_sim::{SimClock, SimDuration};
use histar_store::codec::{Decoder, Encoder};
use histar_store::records::is_persist_key;
use histar_store::{SingleLevelStore, StoreConfig, StoreError, SyncPolicy};
// HashMap appears only as the recovery builder for the kernel's object
// table (insert-only; never iterated).
#[allow(clippy::disallowed_types)]
use std::collections::{BTreeSet, HashMap};

/// Store key (outside the 61-bit object-ID space) holding machine metadata.
const MACHINE_META_KEY: u64 = 1 << 62;

/// Configuration for booting a [`Machine`].
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Seed for the object-ID and category ciphers.
    pub seed: u64,
    /// Configuration of the single-level store and its disk.
    pub store: StoreConfig,
    /// Whether to create a network device at boot.
    pub network_device: bool,
    /// Whether to create a console device at boot.
    pub console_device: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            seed: 0x5157_4f53_4f31_3337,
            store: StoreConfig::default(),
            network_device: true,
            console_device: true,
        }
    }
}

/// Errors raised by machine-level operations (boot, snapshot, recovery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The store failed.
    Store(StoreError),
    /// A kernel object could not be decoded during recovery.
    Corrupt(String),
    /// A kernel call failed during boot.
    Syscall(SyscallError),
}

impl From<StoreError> for MachineError {
    fn from(e: StoreError) -> MachineError {
        MachineError::Store(e)
    }
}

impl From<SyscallError> for MachineError {
    fn from(e: SyscallError) -> MachineError {
        MachineError::Syscall(e)
    }
}

impl core::fmt::Display for MachineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MachineError::Store(e) => write!(f, "store error: {e}"),
            MachineError::Corrupt(what) => write!(f, "corrupt machine state: {what}"),
            MachineError::Syscall(e) => write!(f, "boot-time kernel error: {e}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// A simulated HiStar machine.
///
/// The single-level store lives *inside* the kernel (attached at boot):
/// the persist-record syscalls operate on it directly, so keyed records —
/// the `/persist` filesystem's inodes, dirents and extents — reach disk
/// through the same dispatch boundary as every other syscall.
#[derive(Debug)]
pub struct Machine {
    kernel: Kernel,
    clock: SimClock,
    config: MachineConfig,
    kernel_thread: ObjectId,
    net_device: Option<ObjectId>,
    console_device: Option<ObjectId>,
}

impl Machine {
    /// Boots a fresh machine: formats the disk, creates the root container,
    /// the initial kernel thread and the boot-time devices.
    pub fn boot(config: MachineConfig) -> Machine {
        let clock = SimClock::new();
        let store = SingleLevelStore::format(config.store, clock.clone());
        let mut kernel = Kernel::new(config.seed, Some(clock.clone()));
        kernel.attach_store(store);
        let root = kernel.root_container();
        let kernel_thread = kernel
            .bootstrap_thread(
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                "boot thread",
            )
            .expect("bootstrap thread creation cannot fail on a fresh kernel");

        let net_device = if config.network_device {
            Some(
                kernel
                    .boot_create_device(
                        root,
                        Label::unrestricted(),
                        DeviceBody::network([0x52, 0x54, 0x00, 0x12, 0x34, 0x56]),
                        "eth0",
                    )
                    .expect("boot device creation cannot fail on a fresh kernel"),
            )
        } else {
            None
        };
        let console_device = if config.console_device {
            Some(
                kernel
                    .boot_create_device(
                        root,
                        Label::unrestricted(),
                        DeviceBody::console(),
                        "console",
                    )
                    .expect("boot device creation cannot fail on a fresh kernel"),
            )
        } else {
            None
        };

        Machine {
            kernel,
            clock,
            config,
            kernel_thread,
            net_device,
            console_device,
        }
    }

    /// The machine-wide simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Simulated time since boot.
    pub fn uptime(&self) -> SimDuration {
        self.clock.now()
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The kernel, mutably (system calls take `&mut Kernel`).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The single-level store (attached to the kernel).
    pub fn store(&self) -> &SingleLevelStore {
        self.kernel.store().expect("a machine's kernel has a store")
    }

    /// The single-level store, mutably.
    pub fn store_mut(&mut self) -> &mut SingleLevelStore {
        self.kernel
            .store_mut()
            .expect("a machine's kernel has a store")
    }

    /// The initial kernel thread created at boot.
    pub fn kernel_thread(&self) -> ObjectId {
        self.kernel_thread
    }

    /// The boot-time network device, if configured.
    pub fn net_device(&self) -> Option<ObjectId> {
        self.net_device
    }

    /// The boot-time console device, if configured.
    pub fn console_device(&self) -> Option<ObjectId> {
        self.console_device
    }

    /// Changes the store's synchronous-update policy.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.store_mut().set_sync_policy(policy);
    }

    /// Serializes the entire object table into the single-level store and
    /// takes a checkpoint.  This is the periodic system-wide snapshot; after
    /// it returns, a crash loses nothing.
    ///
    /// Objects are emitted in ascending ID order, so two snapshots of
    /// identical kernel state produce byte-identical disk images — the
    /// object table is a `HashMap` whose iteration order must never leak
    /// into the persistent layout.
    pub fn snapshot(&mut self) {
        // Write (or refresh) every live object, sorted by ID.
        let mut objects: Vec<(u64, Vec<u8>)> = self
            .kernel
            .objects()
            .map(|(id, obj)| (id.raw(), encode_object(obj)))
            .collect();
        objects.sort_unstable_by_key(|(id, _)| *id);
        let live: BTreeSet<u64> = objects.iter().map(|(id, _)| *id).collect();
        for (id, bytes) in objects {
            self.store_mut().put(id, bytes);
        }
        // Remove objects that no longer exist in the kernel (sorted, for
        // the same layout-determinism reason).  Keys in the persist record
        // namespace are not kernel objects — they are owned by the store's
        // own clients (the `/persist` filesystem) and must never be swept.
        let mut stale: Vec<u64> = self
            .store()
            .object_ids()
            .into_iter()
            .filter(|id| *id != MACHINE_META_KEY && !is_persist_key(*id) && !live.contains(id))
            .collect();
        stale.sort_unstable();
        for id in stale {
            self.store_mut().delete(id);
        }
        // Machine metadata: root, counters, boot-time object IDs.
        let (id_counter, cat_counter) = self.kernel.allocator_counters();
        let mut e = Encoder::new();
        e.put_u64(self.kernel.root_container().raw())
            .put_u64(id_counter)
            .put_u64(cat_counter)
            .put_u64(self.kernel_thread.raw())
            .put_u64(self.net_device.map_or(u64::MAX, ObjectId::raw))
            .put_u64(self.console_device.map_or(u64::MAX, ObjectId::raw))
            .put_u64(self.config.seed);
        // The category-translation table: a category's global name must
        // survive a crash, or a recovered node would re-export its
        // categories under fresh names and strand every remote reference.
        let mut bindings: Vec<_> = self.kernel.remote_bindings().collect();
        bindings.sort_unstable_by_key(|(cat, _)| cat.raw());
        e.put_u64(bindings.len() as u64);
        for (cat, (exporter, id)) in bindings {
            e.put_u64(cat.raw()).put_u64(exporter).put_u64(id);
        }
        let meta = e.finish();
        self.store_mut().put(MACHINE_META_KEY, meta);
        self.store_mut().checkpoint();
    }

    /// Simulates a crash: the machine is dropped and a new one is recovered
    /// from whatever the disk contains.  Everything since the last
    /// [`Machine::snapshot`] (or synchronous store operation) is lost, which
    /// is exactly the single-level-store semantics of §3.
    pub fn crash_and_recover(self) -> Result<Machine, MachineError> {
        let config = self.config;
        Machine::recover(config, self.into_disk())
    }

    /// [`Machine::crash_and_recover`] with flight recording: the recovery
    /// phases land as spans in `recorder`, which stays installed on the
    /// recovered kernel (see [`Machine::recover_traced`]).
    pub fn crash_and_recover_traced(
        self,
        recorder: histar_obs::Recorder,
    ) -> Result<Machine, MachineError> {
        let config = self.config;
        Machine::recover_traced(config, self.into_disk(), recorder)
    }

    /// Consumes the machine, returning the raw disk image (for crash
    /// harnesses that mutilate the write-ahead log before recovering).
    pub fn into_disk(self) -> histar_sim::SimDisk {
        let mut kernel = self.kernel;
        kernel
            .take_store()
            .expect("a machine's kernel has a store")
            .into_disk()
    }

    /// Recovers a machine from an existing disk image.
    pub fn recover(
        config: MachineConfig,
        disk: histar_sim::SimDisk,
    ) -> Result<Machine, MachineError> {
        Machine::recover_traced(config, disk, histar_obs::Recorder::disabled())
    }

    /// [`Machine::recover`] with flight recording: the store emits a span
    /// per recovery phase (superblock, B+-tree rebuild, WAL replay), the
    /// machine adds its own object-restore phase, and the recorder stays
    /// installed on the recovered kernel so post-recovery activity lands
    /// in the same trace.
    pub fn recover_traced(
        config: MachineConfig,
        disk: histar_sim::SimDisk,
        recorder: histar_obs::Recorder,
    ) -> Result<Machine, MachineError> {
        let clock = disk.clock().clone();
        let mut store = SingleLevelStore::recover_traced(config.store, disk, recorder.clone())?;
        let restore_start = clock.now().as_nanos();
        let meta_bytes = store.get(MACHINE_META_KEY)?;
        let mut d = Decoder::new(&meta_bytes);
        let read = |d: &mut Decoder<'_>| -> Result<u64, MachineError> {
            d.get_u64()
                .map_err(|e| MachineError::Corrupt(format!("machine metadata: {e}")))
        };
        let root = ObjectId::from_raw(read(&mut d)?);
        let id_counter = read(&mut d)?;
        let cat_counter = read(&mut d)?;
        let kernel_thread = ObjectId::from_raw(read(&mut d)?);
        let net_raw = read(&mut d)?;
        let console_raw = read(&mut d)?;
        let seed = read(&mut d)?;
        // Category-translation bindings (absent in pre-exporter snapshots).
        let mut bindings = Vec::new();
        if d.remaining() > 0 {
            let n = read(&mut d)?;
            for _ in 0..n {
                let cat = histar_label::Category::from_raw(read(&mut d)?);
                let exporter = read(&mut d)?;
                let id = read(&mut d)?;
                bindings.push((cat, (exporter, id)));
            }
        }

        #[allow(clippy::disallowed_types)]
        let mut objects: HashMap<ObjectId, KObject> = HashMap::new();
        for id in store.object_ids() {
            // Skip the machine metadata blob and the persist record
            // namespace: persist records are not kernel objects — they are
            // replayed from the write-ahead log by the store itself and
            // re-mounted by the library's `/persist` filesystem.
            if id == MACHINE_META_KEY || is_persist_key(id) {
                continue;
            }
            let bytes = store.get(id)?;
            let obj = decode_object(&bytes)
                .map_err(|e| MachineError::Corrupt(format!("object {id:#x}: {e}")))?;
            objects.insert(ObjectId::from_raw(id), obj);
        }

        let mut kernel = Kernel::new(seed, Some(clock.clone()));
        kernel.restore_objects(root, objects, id_counter, cat_counter, seed);
        kernel.restore_remote_bindings(bindings);
        kernel.attach_store(store);
        recorder.record(histar_obs::Span {
            cat: "recover",
            name: "object_restore",
            start: restore_start,
            end: clock.now().as_nanos(),
            tid: 0,
            seq: 0,
        });
        kernel.install_recorder(recorder);

        Ok(Machine {
            kernel,
            clock,
            config: MachineConfig { seed, ..config },
            kernel_thread,
            net_device: (net_raw != u64::MAX).then(|| ObjectId::from_raw(net_raw)),
            console_device: (console_raw != u64::MAX).then(|| ObjectId::from_raw(console_raw)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ContainerEntry;
    use histar_label::Level;

    #[test]
    fn boot_creates_devices_and_thread() {
        let m = Machine::boot(MachineConfig::default());
        assert!(m.net_device().is_some());
        assert!(m.console_device().is_some());
        assert_eq!(
            m.kernel().thread_label(m.kernel_thread()).unwrap(),
            Label::unrestricted()
        );
        assert!(m.uptime() >= SimDuration::ZERO);
    }

    #[test]
    fn snapshot_and_recover_preserves_objects_and_labels() {
        let mut m = Machine::boot(MachineConfig::default());
        let tid = m.kernel_thread();
        let root = m.kernel().root_container();

        // Create a category, a tainted segment and write to it.
        let cat = m.kernel_mut().sys_create_category(tid).unwrap();
        let secret_label = Label::builder().set(cat, Level::L3).build();
        let seg = m
            .kernel_mut()
            .sys_segment_create(tid, root, secret_label.clone(), 64, "secret notes")
            .unwrap();
        let entry = ContainerEntry::new(root, seg);
        m.kernel_mut()
            .sys_segment_write(tid, entry, 0, b"top secret")
            .unwrap();

        m.snapshot();
        let mut m2 = m.crash_and_recover().unwrap();

        // The thread still owns the category and the segment still exists
        // with its label and contents.
        assert!(m2.kernel().thread_label(tid).unwrap().owns(cat));
        let data = m2.kernel_mut().sys_segment_read(tid, entry, 0, 10).unwrap();
        assert_eq!(data, b"top secret");
        assert_eq!(
            m2.kernel_mut().sys_obj_get_label(tid, entry).unwrap(),
            secret_label
        );
    }

    #[test]
    fn unsnapshotted_changes_are_lost_on_crash() {
        let mut m = Machine::boot(MachineConfig::default());
        let tid = m.kernel_thread();
        let root = m.kernel().root_container();
        m.snapshot();
        let seg = m
            .kernel_mut()
            .sys_segment_create(tid, root, Label::unrestricted(), 16, "ephemeral")
            .unwrap();
        let mut m2 = m.crash_and_recover().unwrap();
        assert!(
            m2.kernel_mut()
                .sys_segment_read(tid, ContainerEntry::new(root, seg), 0, 1)
                .is_err(),
            "object created after the snapshot must not survive"
        );
    }

    #[test]
    fn category_allocation_continues_after_recovery() {
        let mut m = Machine::boot(MachineConfig::default());
        let tid = m.kernel_thread();
        let c1 = m.kernel_mut().sys_create_category(tid).unwrap();
        m.snapshot();
        let mut m2 = m.crash_and_recover().unwrap();
        let c2 = m2.kernel_mut().sys_create_category(tid).unwrap();
        assert_ne!(c1, c2, "recovered allocator must not reuse category names");
    }

    #[test]
    fn snapshot_removes_deleted_objects_from_store() {
        let mut m = Machine::boot(MachineConfig::default());
        let tid = m.kernel_thread();
        let root = m.kernel().root_container();
        let seg = m
            .kernel_mut()
            .sys_segment_create(tid, root, Label::unrestricted(), 16, "tmp")
            .unwrap();
        m.snapshot();
        m.kernel_mut()
            .sys_obj_unref(tid, ContainerEntry::new(root, seg))
            .unwrap();
        m.snapshot();
        let mut m2 = m.crash_and_recover().unwrap();
        assert!(m2
            .kernel_mut()
            .sys_segment_read(tid, ContainerEntry::new(root, seg), 0, 1)
            .is_err());
    }

    #[test]
    fn remote_category_bindings_survive_recovery() {
        let mut m = Machine::boot(MachineConfig::default());
        let tid = m.kernel_thread();
        let cat = m.kernel_mut().sys_create_category(tid).unwrap();
        let name = (0x1234_5678, 42);
        m.kernel_mut()
            .sys_category_bind_remote(tid, cat, name)
            .unwrap();
        m.snapshot();
        let mut m2 = m.crash_and_recover().unwrap();
        assert_eq!(
            m2.kernel_mut().sys_category_get_remote(tid, cat).unwrap(),
            Some(name)
        );
        assert_eq!(
            m2.kernel_mut()
                .sys_category_resolve_remote(tid, name)
                .unwrap(),
            Some(cat)
        );
    }

    #[test]
    fn recovery_without_metadata_fails_cleanly() {
        let m = Machine::boot(MachineConfig::default());
        // No snapshot was ever taken, so the disk has no superblock.
        let err = m.crash_and_recover();
        assert!(err.is_err());
    }

    #[test]
    fn clock_advances_with_kernel_activity() {
        let mut m = Machine::boot(MachineConfig::default());
        let tid = m.kernel_thread();
        let before = m.uptime();
        for _ in 0..100 {
            m.kernel_mut().sys_self_get_label(tid).unwrap();
        }
        assert!(m.uptime() > before, "syscalls must consume simulated time");
    }
}
