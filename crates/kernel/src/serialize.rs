//! Binary serialization of kernel objects for the single-level store.
//!
//! Every kernel object can be flattened to bytes and restored, which is what
//! makes the single-level store possible: at snapshot time the machine
//! serializes the whole object table into the store, and at boot it rebuilds
//! the table from the most recent snapshot.
//!
//! Labels are encoded using the packed `⟨61-bit category, 3-bit level⟩`
//! representation the kernel itself uses (§2).

use crate::bodies::{
    AddressSpaceBody, Alert, ContainerBody, DeviceBody, DeviceKind, GateBody, Mapping,
    MappingFlags, ObjectBody, SegmentBody, ThreadBody, ThreadState,
};
use crate::kernel::KObject;
use crate::object::{
    ContainerEntry, ObjectFlags, ObjectHeader, ObjectId, ObjectType, METADATA_LEN,
};
use histar_label::{Category, Label, Level};
use histar_store::codec::{DecodeError, Decoder, Encoder};

/// Errors from object deserialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerializeError {
    /// The underlying byte decoding failed.
    Decode(DecodeError),
    /// An enumeration tag had an unknown value.
    BadTag(&'static str, u8),
}

impl From<DecodeError> for SerializeError {
    fn from(e: DecodeError) -> SerializeError {
        SerializeError::Decode(e)
    }
}

impl core::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SerializeError::Decode(e) => write!(f, "decode error: {e}"),
            SerializeError::BadTag(what, v) => write!(f, "bad {what} tag: {v}"),
        }
    }
}

impl std::error::Error for SerializeError {}

fn object_type_tag(t: ObjectType) -> u8 {
    match t {
        ObjectType::Segment => 1,
        ObjectType::Thread => 2,
        ObjectType::AddressSpace => 3,
        ObjectType::Gate => 4,
        ObjectType::Container => 5,
        ObjectType::Device => 6,
    }
}

fn object_type_from_tag(tag: u8) -> Result<ObjectType, SerializeError> {
    Ok(match tag {
        1 => ObjectType::Segment,
        2 => ObjectType::Thread,
        3 => ObjectType::AddressSpace,
        4 => ObjectType::Gate,
        5 => ObjectType::Container,
        6 => ObjectType::Device,
        other => return Err(SerializeError::BadTag("object type", other)),
    })
}

/// Encodes a label: default level byte, entry count, then one packed 64-bit
/// word per entry.
pub fn encode_label(e: &mut Encoder, label: &Label) {
    e.put_u8(label.default_level().encode());
    let entries: Vec<(Category, Level)> = label.entries().collect();
    e.put_u64(entries.len() as u64);
    for (c, l) in entries {
        e.put_u64(c.pack_with_level(l.encode()));
    }
}

/// Decodes a label written by [`encode_label`].
pub fn decode_label(d: &mut Decoder<'_>) -> Result<Label, SerializeError> {
    let default =
        Level::decode(d.get_u8()?).ok_or(SerializeError::BadTag("default level", 0xff))?;
    let n = d.get_u64()? as usize;
    let mut builder = Label::builder().default_level(default);
    for _ in 0..n {
        let word = d.get_u64()?;
        let (c, bits) = Category::unpack_with_level(word);
        let level = Level::decode(bits).ok_or(SerializeError::BadTag("entry level", bits))?;
        builder = builder.set(c, level);
    }
    Ok(builder.build())
}

fn encode_opt_entry(e: &mut Encoder, entry: Option<ContainerEntry>) {
    match entry {
        None => {
            e.put_u8(0);
        }
        Some(ce) => {
            e.put_u8(1)
                .put_u64(ce.container.raw())
                .put_u64(ce.object.raw());
        }
    }
}

fn decode_opt_entry(d: &mut Decoder<'_>) -> Result<Option<ContainerEntry>, SerializeError> {
    match d.get_u8()? {
        0 => Ok(None),
        1 => {
            let c = ObjectId::from_raw(d.get_u64()?);
            let o = ObjectId::from_raw(d.get_u64()?);
            Ok(Some(ContainerEntry::new(c, o)))
        }
        other => Err(SerializeError::BadTag("optional entry", other)),
    }
}

fn encode_header(e: &mut Encoder, h: &ObjectHeader) {
    e.put_u64(h.id.raw());
    e.put_u8(object_type_tag(h.object_type));
    encode_label(e, &h.label);
    e.put_u64(h.quota);
    e.put_u64(h.usage);
    e.put_bytes(&h.metadata);
    e.put_str(&h.descrip);
    e.put_u8(u8::from(h.flags.immutable));
    e.put_u8(u8::from(h.flags.fixed_quota));
    e.put_u32(h.links);
}

fn decode_header(d: &mut Decoder<'_>) -> Result<ObjectHeader, SerializeError> {
    let id = ObjectId::from_raw(d.get_u64()?);
    let object_type = object_type_from_tag(d.get_u8()?)?;
    let label = decode_label(d)?;
    let quota = d.get_u64()?;
    let usage = d.get_u64()?;
    let metadata_vec = d.get_bytes()?;
    let descrip = d.get_str()?;
    let immutable = d.get_u8()? != 0;
    let fixed_quota = d.get_u8()? != 0;
    let links = d.get_u32()?;
    let mut metadata = [0u8; METADATA_LEN];
    let n = metadata_vec.len().min(METADATA_LEN);
    metadata[..n].copy_from_slice(&metadata_vec[..n]);
    Ok(ObjectHeader {
        id,
        label,
        object_type,
        quota,
        usage,
        metadata,
        descrip,
        flags: ObjectFlags {
            immutable,
            fixed_quota,
        },
        links,
    })
}

fn encode_body(e: &mut Encoder, body: &ObjectBody) {
    match body {
        ObjectBody::Segment(s) => {
            e.put_bytes(&s.bytes);
        }
        ObjectBody::Container(c) => {
            e.put_u64(c.links.len() as u64);
            for l in &c.links {
                e.put_u64(l.raw());
            }
            match c.parent {
                None => {
                    e.put_u8(0);
                }
                Some(p) => {
                    e.put_u8(1).put_u64(p.raw());
                }
            }
            e.put_u8(c.avoid_types);
        }
        ObjectBody::Thread(t) => {
            encode_label(e, &t.clearance);
            encode_opt_entry(e, t.address_space);
            e.put_u64(t.entry_point);
            e.put_u8(match t.state {
                ThreadState::Runnable => 0,
                ThreadState::Blocked => 1,
                ThreadState::Halted => 2,
            });
            match t.local_segment {
                None => {
                    e.put_u8(0);
                }
                Some(s) => {
                    e.put_u8(1).put_u64(s.raw());
                }
            }
            e.put_u64(t.pending_alerts.len() as u64);
            for a in &t.pending_alerts {
                e.put_u64(a.code);
            }
        }
        ObjectBody::AddressSpace(a) => {
            e.put_u64(a.mappings.len() as u64);
            for m in &a.mappings {
                e.put_u64(m.va);
                e.put_u64(m.segment.container.raw());
                e.put_u64(m.segment.object.raw());
                e.put_u64(m.offset);
                e.put_u64(m.npages);
                e.put_u8(u8::from(m.flags.read));
                e.put_u8(u8::from(m.flags.write));
                e.put_u8(u8::from(m.flags.execute));
            }
        }
        ObjectBody::Gate(g) => {
            encode_label(e, &g.clearance);
            encode_opt_entry(e, g.address_space);
            e.put_u64(g.entry_point);
            e.put_u64(g.stack_pointer);
            e.put_u64(g.closure_args.len() as u64);
            for a in &g.closure_args {
                e.put_u64(*a);
            }
        }
        ObjectBody::Device(dev) => {
            e.put_u8(match dev.kind {
                DeviceKind::Network => 0,
                DeviceKind::Console => 1,
                DeviceKind::Exporter => 2,
            });
            e.put_bytes(&dev.mac);
            e.put_u64(dev.rx_queue.len() as u64);
            for f in &dev.rx_queue {
                e.put_bytes(f);
            }
            e.put_u64(dev.tx_queue.len() as u64);
            for f in &dev.tx_queue {
                e.put_bytes(f);
            }
        }
    }
}

fn decode_body(d: &mut Decoder<'_>, ty: ObjectType) -> Result<ObjectBody, SerializeError> {
    Ok(match ty {
        ObjectType::Segment => ObjectBody::Segment(SegmentBody {
            bytes: d.get_bytes()?,
        }),
        ObjectType::Container => {
            let n = d.get_u64()? as usize;
            let mut links = Vec::with_capacity(n);
            for _ in 0..n {
                links.push(ObjectId::from_raw(d.get_u64()?));
            }
            let parent = match d.get_u8()? {
                0 => None,
                1 => Some(ObjectId::from_raw(d.get_u64()?)),
                other => return Err(SerializeError::BadTag("container parent", other)),
            };
            let avoid_types = d.get_u8()?;
            ObjectBody::Container(ContainerBody::with_links(links, parent, avoid_types))
        }
        ObjectType::Thread => {
            let clearance = decode_label(d)?;
            let address_space = decode_opt_entry(d)?;
            let entry_point = d.get_u64()?;
            let state = match d.get_u8()? {
                0 => ThreadState::Runnable,
                1 => ThreadState::Blocked,
                2 => ThreadState::Halted,
                other => return Err(SerializeError::BadTag("thread state", other)),
            };
            let local_segment = match d.get_u8()? {
                0 => None,
                1 => Some(ObjectId::from_raw(d.get_u64()?)),
                other => return Err(SerializeError::BadTag("local segment", other)),
            };
            let n = d.get_u64()? as usize;
            let mut pending_alerts = Vec::with_capacity(n);
            for _ in 0..n {
                pending_alerts.push(Alert { code: d.get_u64()? });
            }
            // The completion-side wake bit is ABI-edge state (completion
            // queues are not persisted); the alert bit is derivable.
            let wake_flags = if pending_alerts.is_empty() {
                0
            } else {
                crate::bodies::WAKE_ALERT
            };
            ObjectBody::Thread(ThreadBody {
                clearance,
                address_space,
                entry_point,
                state,
                local_segment,
                pending_alerts,
                wake_flags,
            })
        }
        ObjectType::AddressSpace => {
            let n = d.get_u64()? as usize;
            let mut mappings = Vec::with_capacity(n);
            for _ in 0..n {
                let va = d.get_u64()?;
                let c = ObjectId::from_raw(d.get_u64()?);
                let o = ObjectId::from_raw(d.get_u64()?);
                let offset = d.get_u64()?;
                let npages = d.get_u64()?;
                let read = d.get_u8()? != 0;
                let write = d.get_u8()? != 0;
                let execute = d.get_u8()? != 0;
                mappings.push(Mapping {
                    va,
                    segment: ContainerEntry::new(c, o),
                    offset,
                    npages,
                    flags: MappingFlags {
                        read,
                        write,
                        execute,
                    },
                });
            }
            ObjectBody::AddressSpace(AddressSpaceBody { mappings })
        }
        ObjectType::Gate => {
            let clearance = decode_label(d)?;
            let address_space = decode_opt_entry(d)?;
            let entry_point = d.get_u64()?;
            let stack_pointer = d.get_u64()?;
            let n = d.get_u64()? as usize;
            let mut closure_args = Vec::with_capacity(n);
            for _ in 0..n {
                closure_args.push(d.get_u64()?);
            }
            ObjectBody::Gate(GateBody {
                clearance,
                address_space,
                entry_point,
                stack_pointer,
                closure_args,
            })
        }
        ObjectType::Device => {
            let kind = match d.get_u8()? {
                0 => DeviceKind::Network,
                1 => DeviceKind::Console,
                2 => DeviceKind::Exporter,
                other => return Err(SerializeError::BadTag("device kind", other)),
            };
            let mac_vec = d.get_bytes()?;
            let mut mac = [0u8; 6];
            let n = mac_vec.len().min(6);
            mac[..n].copy_from_slice(&mac_vec[..n]);
            let nrx = d.get_u64()? as usize;
            let mut rx_queue = Vec::with_capacity(nrx);
            for _ in 0..nrx {
                rx_queue.push(d.get_bytes()?);
            }
            let ntx = d.get_u64()? as usize;
            let mut tx_queue = Vec::with_capacity(ntx);
            for _ in 0..ntx {
                tx_queue.push(d.get_bytes()?);
            }
            ObjectBody::Device(DeviceBody {
                kind,
                mac,
                rx_queue,
                tx_queue,
            })
        }
    })
}

/// Serializes a whole kernel object.
pub fn encode_object(obj: &KObject) -> Vec<u8> {
    let mut e = Encoder::new();
    encode_header(&mut e, &obj.header);
    encode_body(&mut e, &obj.body);
    e.finish()
}

/// Deserializes a kernel object written by [`encode_object`].
pub fn decode_object(bytes: &[u8]) -> Result<KObject, SerializeError> {
    let mut d = Decoder::new(bytes);
    let header = decode_header(&mut d)?;
    let body = decode_body(&mut d, header.object_type)?;
    Ok(KObject { header, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_label::Level;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    fn sample_label() -> Label {
        Label::builder()
            .set(Category::from_raw(5), Level::Star)
            .set(Category::from_raw(9), Level::L3)
            .set(Category::from_raw(11), Level::L0)
            .default_level(Level::L1)
            .build()
    }

    fn header(ty: ObjectType) -> ObjectHeader {
        let mut h = ObjectHeader::new(oid(77), ty, sample_label(), 4096, "sample object");
        h.usage = 123;
        h.metadata[0] = 0xab;
        h.metadata[63] = 0xcd;
        h.flags.immutable = true;
        h.links = 3;
        h
    }

    fn round_trip(obj: KObject) {
        let bytes = encode_object(&obj);
        let back = decode_object(&bytes).unwrap();
        assert_eq!(back.header.id, obj.header.id);
        assert_eq!(back.header.label, obj.header.label);
        assert_eq!(back.header.object_type, obj.header.object_type);
        assert_eq!(back.header.quota, obj.header.quota);
        assert_eq!(back.header.usage, obj.header.usage);
        assert_eq!(back.header.metadata, obj.header.metadata);
        assert_eq!(back.header.descrip, obj.header.descrip);
        assert_eq!(back.header.flags, obj.header.flags);
        assert_eq!(back.header.links, obj.header.links);
        match (&obj.body, &back.body) {
            (ObjectBody::Segment(a), ObjectBody::Segment(b)) => assert_eq!(a, b),
            (ObjectBody::Container(a), ObjectBody::Container(b)) => {
                assert_eq!(a.links, b.links);
                assert_eq!(a.parent, b.parent);
                assert_eq!(a.avoid_types, b.avoid_types);
            }
            (ObjectBody::Thread(a), ObjectBody::Thread(b)) => {
                assert_eq!(a.clearance, b.clearance);
                assert_eq!(a.address_space, b.address_space);
                assert_eq!(a.entry_point, b.entry_point);
                assert_eq!(a.state, b.state);
                assert_eq!(a.local_segment, b.local_segment);
                assert_eq!(a.pending_alerts, b.pending_alerts);
            }
            (ObjectBody::AddressSpace(a), ObjectBody::AddressSpace(b)) => {
                assert_eq!(a.mappings, b.mappings)
            }
            (ObjectBody::Gate(a), ObjectBody::Gate(b)) => {
                assert_eq!(a.clearance, b.clearance);
                assert_eq!(a.entry_point, b.entry_point);
                assert_eq!(a.closure_args, b.closure_args);
            }
            (ObjectBody::Device(a), ObjectBody::Device(b)) => {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.mac, b.mac);
                assert_eq!(a.rx_queue, b.rx_queue);
                assert_eq!(a.tx_queue, b.tx_queue);
            }
            (a, b) => panic!("body type changed: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn label_round_trip() {
        let l = sample_label();
        let mut e = Encoder::new();
        encode_label(&mut e, &l);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(decode_label(&mut d).unwrap(), l);
    }

    #[test]
    fn segment_round_trip() {
        round_trip(KObject {
            header: header(ObjectType::Segment),
            body: ObjectBody::Segment(SegmentBody {
                bytes: (0..255u8).collect(),
            }),
        });
    }

    #[test]
    fn container_round_trip() {
        round_trip(KObject {
            header: header(ObjectType::Container),
            body: ObjectBody::Container(ContainerBody::with_links(
                vec![oid(1), oid(2), oid(3)],
                Some(oid(99)),
                0b10_0101,
            )),
        });
    }

    #[test]
    fn thread_round_trip() {
        let mut t = ThreadBody::new(sample_label());
        t.address_space = Some(ContainerEntry::new(oid(4), oid(5)));
        t.entry_point = 0xfeed;
        t.state = ThreadState::Blocked;
        t.local_segment = Some(oid(6));
        t.pending_alerts = vec![Alert { code: 9 }, Alert { code: 17 }];
        round_trip(KObject {
            header: header(ObjectType::Thread),
            body: ObjectBody::Thread(t),
        });
    }

    #[test]
    fn address_space_round_trip() {
        let body = AddressSpaceBody {
            mappings: vec![
                Mapping {
                    va: 0x1000,
                    segment: ContainerEntry::new(oid(1), oid(2)),
                    offset: 0,
                    npages: 4,
                    flags: MappingFlags::rw(),
                },
                Mapping {
                    va: 0x8000,
                    segment: ContainerEntry::new(oid(1), oid(3)),
                    offset: 4096,
                    npages: 1,
                    flags: MappingFlags::rx(),
                },
            ],
        };
        round_trip(KObject {
            header: header(ObjectType::AddressSpace),
            body: ObjectBody::AddressSpace(body),
        });
    }

    #[test]
    fn gate_round_trip() {
        let mut g = GateBody::new(sample_label(), 0x1234);
        g.address_space = Some(ContainerEntry::new(oid(7), oid(8)));
        g.stack_pointer = 0x9000;
        g.closure_args = vec![5, 6, 7];
        round_trip(KObject {
            header: header(ObjectType::Gate),
            body: ObjectBody::Gate(g),
        });
    }

    #[test]
    fn device_round_trip() {
        let mut d = DeviceBody::network([9, 8, 7, 6, 5, 4]);
        d.rx_queue = vec![vec![1, 2, 3], vec![4]];
        d.tx_queue = vec![vec![5; 100]];
        round_trip(KObject {
            header: header(ObjectType::Device),
            body: ObjectBody::Device(d),
        });
    }

    #[test]
    fn corrupt_input_is_rejected() {
        let obj = KObject {
            header: header(ObjectType::Segment),
            body: ObjectBody::Segment(SegmentBody { bytes: vec![1; 64] }),
        };
        let bytes = encode_object(&obj);
        assert!(decode_object(&bytes[..bytes.len() / 2]).is_err());
        let mut bad_tag = bytes.clone();
        bad_tag[8] = 99; // object type tag lives right after the id
        assert!(decode_object(&bad_tag).is_err());
    }
}
