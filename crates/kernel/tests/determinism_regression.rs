//! Regression test for the nondeterministic-iteration bugs flowcheck
//! found (PR 9): `remote_bindings` was a `HashMap`, so
//! `Kernel::remote_bindings()` leaked per-instance hash order to every
//! consumer — two identically built kernels could disagree on binding
//! order within one process. The table is a `BTreeMap` now; this test
//! pins the observable guarantees:
//!
//! 1. binding enumeration order is identical across identically built
//!    kernels (and is sorted by category),
//! 2. audit traces of identical runs are identical record-for-record,
//! 3. snapshot disk images stay byte-identical under a binding- and
//!    handle-heavy workload (the other migrated maps: handles,
//!    completions, watchers).

use histar_kernel::object::ContainerEntry;
use histar_kernel::{Machine, MachineConfig};
use histar_label::{Label, Level};

/// A deterministic workload touching every migrated map: category
/// bindings (remote_bindings/remote_index), capability handles
/// (handles), blocking watches and completions (watchers/completions),
/// and enough objects that hash order would scramble with high
/// probability if any of them regressed to a HashMap.
fn build() -> Machine {
    let mut m = Machine::boot(MachineConfig::default());
    m.kernel_mut().enable_syscall_trace(4096);
    let tid = m.kernel_thread();
    let root = m.kernel().root_container();

    let dir = m
        .kernel_mut()
        .trap_container_create(tid, root, Label::unrestricted(), "dir", 0, 8 << 20)
        .unwrap();

    let mut cats = Vec::new();
    for i in 0..16u64 {
        let cat = m.kernel_mut().trap_create_category(tid).unwrap();
        m.kernel_mut()
            .trap_category_bind_remote(tid, cat, (0xABCD ^ i, 100 + i))
            .unwrap();
        cats.push(cat);
    }

    for (i, cat) in cats.iter().enumerate() {
        let label = if i % 2 == 0 {
            Label::builder().set(*cat, Level::L3).build()
        } else {
            Label::unrestricted()
        };
        let seg = m
            .kernel_mut()
            .trap_segment_create(tid, dir, label, 64, &format!("seg{i}"))
            .unwrap();
        m.kernel_mut()
            .trap_segment_write(tid, ContainerEntry::new(dir, seg), 0, &[i as u8; 8])
            .unwrap();
    }
    m.snapshot();
    m
}

#[test]
fn remote_binding_order_is_stable_across_instances() {
    let a = build();
    let b = build();
    let ba: Vec<_> = a.kernel().remote_bindings().collect();
    let bb: Vec<_> = b.kernel().remote_bindings().collect();
    assert_eq!(ba.len(), 16);
    assert_eq!(
        ba, bb,
        "two identically built kernels must enumerate bindings identically"
    );
    // The order is the sorted category order, not insertion or hash order.
    let mut sorted = ba.clone();
    sorted.sort_unstable_by_key(|(cat, _)| cat.raw());
    assert_eq!(ba, sorted, "bindings must enumerate in category order");
}

#[test]
fn audit_traces_of_identical_runs_are_identical() {
    let a = build();
    let b = build();
    let ta: Vec<_> = a
        .kernel()
        .syscall_trace()
        .unwrap()
        .records()
        .map(|r| (r.seq, r.tid, r.syscall, r.ok))
        .collect();
    let tb: Vec<_> = b
        .kernel()
        .syscall_trace()
        .unwrap()
        .records()
        .map(|r| (r.seq, r.tid, r.syscall, r.ok))
        .collect();
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "audit traces must replay identically");
}

#[test]
fn binding_heavy_snapshots_are_byte_identical() {
    let a = build();
    let b = build();
    let img_a = a.store().disk().image();
    let img_b = b.store().disk().image();
    assert!(!img_a.is_empty());
    assert_eq!(img_a, img_b, "snapshot images must be byte-identical");
}
