//! Snapshot byte-stability: two machines built by the same deterministic
//! script must produce byte-identical disk images when snapshotted.
//!
//! The kernel's object table is a `HashMap`, whose iteration order differs
//! between map instances even within one process; `Machine::snapshot` must
//! therefore emit objects in sorted-ID order (and sweep stale store
//! objects in sorted order) so the persistent layout never depends on
//! hashing.  This test builds the same state twice — including object
//! deletions, so the stale-object sweep runs — and compares the raw disk
//! blocks.

use histar_kernel::object::ContainerEntry;
use histar_kernel::{Machine, MachineConfig};
use histar_label::{Label, Level};

/// Builds a machine with a few dozen objects, some deletions, a category
/// binding, and two snapshots (the second exercising the stale sweep).
fn build() -> Machine {
    let mut m = Machine::boot(MachineConfig::default());
    let tid = m.kernel_thread();
    let root = m.kernel().root_container();

    let cat = m.kernel_mut().trap_create_category(tid).unwrap();
    m.kernel_mut()
        .trap_category_bind_remote(tid, cat, (0x5151, 9))
        .unwrap();

    let dir = m
        .kernel_mut()
        .trap_container_create(tid, root, Label::unrestricted(), "dir", 0, 8 << 20)
        .unwrap();
    let mut segs = Vec::new();
    for i in 0..40 {
        let label = if i % 3 == 0 {
            Label::builder().set(cat, Level::L3).build()
        } else {
            Label::unrestricted()
        };
        let seg = m
            .kernel_mut()
            .trap_segment_create(tid, dir, label, 128 + i, &format!("seg{i}"))
            .unwrap();
        m.kernel_mut()
            .trap_segment_write(tid, ContainerEntry::new(dir, seg), 0, &[i as u8; 16])
            .unwrap();
        segs.push(seg);
    }
    m.snapshot();
    // Delete every fourth segment, so the next snapshot must sweep stale
    // store objects.
    for seg in segs.iter().step_by(4) {
        m.kernel_mut()
            .trap_obj_unref(tid, ContainerEntry::new(dir, *seg))
            .unwrap();
    }
    m.snapshot();
    m
}

#[test]
fn identical_state_produces_identical_disk_images() {
    let a = build();
    let b = build();
    let img_a = a.store().disk().image();
    let img_b = b.store().disk().image();
    assert!(!img_a.is_empty());
    assert_eq!(
        img_a.len(),
        img_b.len(),
        "same number of written disk blocks"
    );
    for ((na, da), (nb, db)) in img_a.iter().zip(img_b.iter()) {
        assert_eq!(na, nb, "block numbers must match");
        assert_eq!(da, db, "block {na} must be byte-identical");
    }
}

#[test]
fn snapshot_image_survives_recovery_equivalently() {
    // Recovering each of two identically built machines and snapshotting
    // again must also agree byte-for-byte: recovery goes through the same
    // sorted emission path.
    let a = build().crash_and_recover().unwrap();
    let b = build().crash_and_recover().unwrap();
    let mut a = a;
    let mut b = b;
    a.snapshot();
    b.snapshot();
    assert_eq!(a.store().disk().image(), b.store().disk().image());
    // And the recovered kernels agree on live state.
    assert_eq!(a.kernel().object_count(), b.kernel().object_count());
}
