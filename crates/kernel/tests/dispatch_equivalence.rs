//! Property-style equivalence test: for every [`Syscall`] variant,
//! trapping through `Kernel::dispatch` and calling the corresponding
//! `sys_*` method directly produce identical results, identical label-check
//! outcomes and identical kernel state evolution.
//!
//! Two kernels are built from the same seed with the same deterministic
//! setup script, so their object IDs, category names and labels coincide
//! exactly.  Each case then executes one call — direct on kernel A,
//! dispatched on kernel B — and the test compares the (typed) results, the
//! aggregate [`SyscallStats`] (which count every label comparison), and the
//! resulting object counts.  A coverage check guarantees no syscall variant
//! is left untested.

use histar_kernel::bodies::{DeviceBody, Mapping, MappingFlags};
use histar_kernel::dispatch::{Syscall, SyscallResult, SYSCALL_COUNT};
use histar_kernel::kernel::RemoteCategoryName;
use histar_kernel::object::{ContainerEntry, ObjectId, METADATA_LEN};
use histar_kernel::syscall::SyscallError;
use histar_kernel::Kernel;
use histar_label::{Category, Label, Level};

/// Deterministic fixture shared by both kernels of every case.
struct Fx {
    root: ObjectId,
    boot: ObjectId,
    peer: ObjectId,
    cat: Category,
    cat_unbound: Category,
    bound_name: RemoteCategoryName,
    dir: ObjectId,
    seg: ObjectId,
    fixed: ObjectId,
    aspace: ObjectId,
    gate: ObjectId,
    gate_label: Label,
    dev: ObjectId,
}

fn entry(fx: &Fx, o: ObjectId) -> ContainerEntry {
    ContainerEntry::new(fx.root, o)
}

/// Builds one kernel with a rich, fully deterministic state touching every
/// object type.
fn setup() -> (Kernel, Fx) {
    let mut k = Kernel::new(0x0d15_ea5e, None);
    let root = k.root_container();
    let boot = k
        .bootstrap_thread(
            root,
            Label::unrestricted(),
            Label::default_clearance(),
            "init",
        )
        .unwrap();
    let cat = k.sys_create_category(boot).unwrap();
    let cat_unbound = k.sys_create_category(boot).unwrap();
    let bound_name: RemoteCategoryName = (0xaaaa, 1);
    k.sys_category_bind_remote(boot, cat, bound_name).unwrap();
    let dir = k
        .sys_container_create(boot, root, Label::unrestricted(), "dir", 0, 1 << 20)
        .unwrap();
    let seg = k
        .sys_segment_create(boot, root, Label::unrestricted(), 256, "seg")
        .unwrap();
    k.sys_segment_write(boot, ContainerEntry::new(root, seg), 0, b"deterministic")
        .unwrap();
    let fixed = k
        .sys_segment_create(boot, root, Label::unrestricted(), 64, "fixed")
        .unwrap();
    k.sys_obj_set_fixed_quota(boot, ContainerEntry::new(root, fixed))
        .unwrap();
    let aspace = k
        .sys_as_create(boot, root, Label::unrestricted(), "as")
        .unwrap();
    k.sys_as_map(
        boot,
        ContainerEntry::new(root, aspace),
        Mapping {
            va: 0x10_0000,
            segment: ContainerEntry::new(root, seg),
            offset: 0,
            npages: 1,
            flags: MappingFlags::rw(),
        },
    )
    .unwrap();
    k.sys_self_set_as(boot, ContainerEntry::new(root, aspace))
        .unwrap();
    let gate_label = k.thread_label(boot).unwrap();
    let gate = k
        .sys_gate_create(
            boot,
            root,
            gate_label.clone(),
            Label::default_clearance(),
            None,
            0x40,
            vec![7, 8],
            "gate",
        )
        .unwrap();
    // The peer inherits boot's address space, so alerts can reach both.
    let peer = k
        .sys_thread_create(
            boot,
            root,
            Label::unrestricted(),
            Label::default_clearance(),
            0,
            "peer",
        )
        .unwrap();
    // One pending alert for boot, so SelfTakeAlert has something to take.
    k.sys_thread_alert(peer, ContainerEntry::new(root, boot), 5)
        .unwrap();
    let dev = k
        .boot_create_device(
            root,
            Label::unrestricted(),
            DeviceBody::network([2, 2, 2, 2, 2, 2]),
            "eth0",
        )
        .unwrap();
    k.device_inject_rx(dev, vec![0xcc, 0xdd]).unwrap();
    (
        k,
        Fx {
            root,
            boot,
            peer,
            cat,
            cat_unbound,
            bound_name,
            dir,
            seg,
            fixed,
            aspace,
            gate,
            gate_label,
            dev,
        },
    )
}

type Direct = Box<dyn Fn(&mut Kernel, &Fx) -> Result<SyscallResult, SyscallError>>;

/// One equivalence case: the trapped call and the equivalent direct call,
/// with the direct result wrapped into the same typed envelope.
fn cases(fx: &Fx) -> Vec<(Syscall, Direct)> {
    use SyscallResult as R;
    let e_seg = entry(fx, fx.seg);
    let e_fixed = entry(fx, fx.fixed);
    let e_dir = entry(fx, fx.dir);
    let e_as = entry(fx, fx.aspace);
    let e_gate = entry(fx, fx.gate);
    let e_dev = entry(fx, fx.dev);
    let e_peer = entry(fx, fx.peer);
    let tainted = Label::builder()
        .own(fx.cat)
        .set(fx.cat_unbound, Level::L2)
        .build();
    let raised_clearance = Label::default_clearance().with(fx.cat_unbound, Level::L3);
    let gate_request = fx.gate_label.clone();
    let new_mapping = Mapping {
        va: 0x20_0000,
        segment: e_seg,
        offset: 0,
        npages: 1,
        flags: MappingFlags::ro(),
    };

    vec![
        (
            Syscall::CreateCategory,
            Box::new(|k, fx| k.sys_create_category(fx.boot).map(R::Category)),
        ),
        (
            Syscall::SelfSetLabel {
                label: tainted.clone(),
            },
            {
                let l = tainted.clone();
                Box::new(move |k, fx| k.sys_self_set_label(fx.boot, l.clone()).map(|()| R::Unit))
            },
        ),
        (
            Syscall::SelfSetClearance {
                clearance: raised_clearance.clone(),
            },
            {
                let c = raised_clearance.clone();
                Box::new(move |k, fx| {
                    k.sys_self_set_clearance(fx.boot, c.clone())
                        .map(|()| R::Unit)
                })
            },
        ),
        (
            Syscall::SelfGetLabel,
            Box::new(|k, fx| k.sys_self_get_label(fx.boot).map(R::Label)),
        ),
        (
            Syscall::SelfGetClearance,
            Box::new(|k, fx| k.sys_self_get_clearance(fx.boot).map(R::Label)),
        ),
        (
            Syscall::ContainerCreate {
                parent: fx.root,
                label: Label::unrestricted(),
                descrip: "c2".into(),
                avoid_types: 0,
                quota: 1 << 16,
            },
            Box::new(|k, fx| {
                k.sys_container_create(fx.boot, fx.root, Label::unrestricted(), "c2", 0, 1 << 16)
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::ObjUnref { entry: e_dir },
            Box::new(move |k, fx| k.sys_obj_unref(fx.boot, e_dir).map(|()| R::Unit)),
        ),
        (
            Syscall::HardLink {
                entry: e_fixed,
                dst: fx.dir,
            },
            Box::new(move |k, fx| k.sys_hard_link(fx.boot, e_fixed, fx.dir).map(|()| R::Unit)),
        ),
        (
            Syscall::ContainerQuotaAvail { container: fx.dir },
            Box::new(|k, fx| k.sys_container_quota_avail(fx.boot, fx.dir).map(R::U64)),
        ),
        (
            Syscall::ContainerGetParent { container: fx.dir },
            Box::new(|k, fx| k.sys_container_get_parent(fx.boot, fx.dir).map(R::ObjectId)),
        ),
        (
            Syscall::ContainerList { container: fx.root },
            Box::new(|k, fx| k.sys_container_list(fx.boot, fx.root).map(R::ObjectIds)),
        ),
        (
            Syscall::QuotaMove {
                container: fx.root,
                object: fx.dir,
                delta: 4096,
            },
            Box::new(|k, fx| {
                k.sys_quota_move(fx.boot, fx.root, fx.dir, 4096)
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::ObjGetLabel { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_get_label(fx.boot, e_seg).map(R::Label)),
        ),
        (
            Syscall::ObjGetInfo { entry: e_seg },
            Box::new(move |k, fx| {
                k.sys_obj_get_info(fx.boot, e_seg)
                    .map(|(object_type, descrip, quota)| R::Info {
                        object_type,
                        descrip,
                        quota,
                    })
            }),
        ),
        (
            Syscall::ObjGetMetadata { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_get_metadata(fx.boot, e_seg).map(R::Metadata)),
        ),
        (
            Syscall::ObjSetMetadata {
                entry: e_seg,
                metadata: [7; METADATA_LEN],
            },
            Box::new(move |k, fx| {
                k.sys_obj_set_metadata(fx.boot, e_seg, [7; METADATA_LEN])
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::ObjSetImmutable { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_set_immutable(fx.boot, e_seg).map(|()| R::Unit)),
        ),
        (
            Syscall::ObjSetFixedQuota { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_set_fixed_quota(fx.boot, e_seg).map(|()| R::Unit)),
        ),
        (
            Syscall::SegmentCreate {
                container: fx.root,
                label: Label::unrestricted(),
                len: 64,
                descrip: "new".into(),
            },
            Box::new(|k, fx| {
                k.sys_segment_create(fx.boot, fx.root, Label::unrestricted(), 64, "new")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::SegmentResize {
                entry: e_seg,
                len: 512,
            },
            Box::new(move |k, fx| k.sys_segment_resize(fx.boot, e_seg, 512).map(|()| R::Unit)),
        ),
        (
            Syscall::SegmentRead {
                entry: e_seg,
                offset: 0,
                len: 13,
            },
            Box::new(move |k, fx| k.sys_segment_read(fx.boot, e_seg, 0, 13).map(R::Bytes)),
        ),
        (
            Syscall::SegmentWrite {
                entry: e_seg,
                offset: 4,
                data: b"xyz".to_vec(),
            },
            Box::new(move |k, fx| {
                k.sys_segment_write(fx.boot, e_seg, 4, b"xyz")
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::SegmentLen { entry: e_seg },
            Box::new(move |k, fx| k.sys_segment_len(fx.boot, e_seg).map(R::U64)),
        ),
        (
            Syscall::SegmentCopy {
                src: e_seg,
                dst_container: fx.root,
                label: Label::unrestricted(),
                descrip: "copy".into(),
            },
            Box::new(move |k, fx| {
                k.sys_segment_copy(fx.boot, e_seg, fx.root, Label::unrestricted(), "copy")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::AsCreate {
                container: fx.root,
                label: Label::unrestricted(),
                descrip: "as2".into(),
            },
            Box::new(|k, fx| {
                k.sys_as_create(fx.boot, fx.root, Label::unrestricted(), "as2")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::AsCopy {
                src: e_as,
                dst_container: fx.root,
                label: Label::unrestricted(),
                descrip: "asc".into(),
            },
            Box::new(move |k, fx| {
                k.sys_as_copy(fx.boot, e_as, fx.root, Label::unrestricted(), "asc")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::AsMap {
                aspace: e_as,
                mapping: new_mapping,
            },
            Box::new(move |k, fx| k.sys_as_map(fx.boot, e_as, new_mapping).map(|()| R::Unit)),
        ),
        (
            Syscall::AsUnmap {
                aspace: e_as,
                va: 0x10_0000,
            },
            Box::new(move |k, fx| k.sys_as_unmap(fx.boot, e_as, 0x10_0000).map(|()| R::Unit)),
        ),
        (
            Syscall::SelfSetAs { aspace: e_as },
            Box::new(move |k, fx| k.sys_self_set_as(fx.boot, e_as).map(|()| R::Unit)),
        ),
        (
            Syscall::PageFault {
                va: 0x10_0000,
                write: false,
            },
            Box::new(|k, fx| {
                k.sys_page_fault(fx.boot, 0x10_0000, false)
                    .map(R::PageFault)
            }),
        ),
        (
            Syscall::ThreadCreate {
                container: fx.root,
                label: Label::unrestricted(),
                clearance: Label::default_clearance(),
                entry_point: 9,
                descrip: "t2".into(),
            },
            Box::new(|k, fx| {
                k.sys_thread_create(
                    fx.boot,
                    fx.root,
                    Label::unrestricted(),
                    Label::default_clearance(),
                    9,
                    "t2",
                )
                .map(R::ObjectId)
            }),
        ),
        (
            Syscall::SelfLocalSegment,
            Box::new(|k, fx| k.sys_self_local_segment(fx.boot).map(R::ObjectId)),
        ),
        (
            Syscall::SelfHalt,
            Box::new(|k, fx| k.sys_self_halt(fx.boot).map(|()| R::Unit)),
        ),
        (
            Syscall::ThreadAlert {
                target: e_peer,
                code: 3,
            },
            Box::new(move |k, fx| k.sys_thread_alert(fx.boot, e_peer, 3).map(|()| R::Unit)),
        ),
        (
            Syscall::SelfTakeAlert,
            Box::new(|k, fx| k.sys_self_take_alert(fx.boot).map(R::Alert)),
        ),
        (
            Syscall::ThreadGetLabel { target: e_peer },
            Box::new(move |k, fx| k.sys_thread_get_label(fx.boot, e_peer).map(R::Label)),
        ),
        (
            Syscall::GateCreate {
                container: fx.root,
                label: fx.gate_label.clone(),
                clearance: Label::default_clearance(),
                address_space: None,
                entry_point: 0x44,
                closure_args: vec![1],
                descrip: "g2".into(),
            },
            {
                let gl = fx.gate_label.clone();
                Box::new(move |k, fx| {
                    k.sys_gate_create(
                        fx.boot,
                        fx.root,
                        gl.clone(),
                        Label::default_clearance(),
                        None,
                        0x44,
                        vec![1],
                        "g2",
                    )
                    .map(R::ObjectId)
                })
            },
        ),
        (
            Syscall::GateEnter {
                gate: e_gate,
                requested: gate_request.clone(),
                requested_clearance: Label::default_clearance(),
                verify: Label::unrestricted(),
            },
            {
                let req = gate_request.clone();
                Box::new(move |k, fx| {
                    k.sys_gate_enter(
                        fx.boot,
                        e_gate,
                        req.clone(),
                        Label::default_clearance(),
                        Label::unrestricted(),
                    )
                    .map(R::GateEntry)
                })
            },
        ),
        (
            Syscall::GateClearance { gate: e_gate },
            Box::new(move |k, fx| k.sys_gate_clearance(fx.boot, e_gate).map(R::Label)),
        ),
        (
            Syscall::CategoryBindRemote {
                category: fx.cat_unbound,
                name: (0xbbbb, 2),
            },
            Box::new(|k, fx| {
                k.sys_category_bind_remote(fx.boot, fx.cat_unbound, (0xbbbb, 2))
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::CategoryGetRemote { category: fx.cat },
            Box::new(|k, fx| {
                k.sys_category_get_remote(fx.boot, fx.cat)
                    .map(R::RemoteName)
            }),
        ),
        (
            Syscall::CategoryResolveRemote {
                name: fx.bound_name,
            },
            Box::new(|k, fx| {
                k.sys_category_resolve_remote(fx.boot, fx.bound_name)
                    .map(R::ResolvedCategory)
            }),
        ),
        (
            Syscall::NetMac { device: e_dev },
            Box::new(move |k, fx| k.sys_net_mac(fx.boot, e_dev).map(R::Mac)),
        ),
        (
            Syscall::NetTransmit {
                device: e_dev,
                frame: vec![0xee],
            },
            Box::new(move |k, fx| {
                k.sys_net_transmit(fx.boot, e_dev, vec![0xee])
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::NetReceive { device: e_dev },
            Box::new(move |k, fx| k.sys_net_receive(fx.boot, e_dev).map(R::Frame)),
        ),
    ]
}

#[test]
fn every_syscall_dispatches_identically_to_its_direct_call() {
    let (_, fx_probe) = setup();
    let all = cases(&fx_probe);

    // Coverage: the case list must touch every ABI index exactly once.
    let mut seen = [false; SYSCALL_COUNT];
    for (call, _) in &all {
        assert!(!seen[call.index()], "duplicate case for {}", call.name());
        seen[call.index()] = true;
    }
    assert!(
        seen.iter().all(|s| *s),
        "missing cases: {:?}",
        (0..SYSCALL_COUNT)
            .filter(|&i| !seen[i])
            .map(|i| histar_kernel::dispatch::SYSCALL_NAMES[i])
            .collect::<Vec<_>>()
    );

    for (call, direct) in all {
        let name = call.name();
        let (mut ka, fxa) = setup();
        let (mut kb, fxb) = setup();
        assert_eq!(fxa.seg, fxb.seg, "setup must be deterministic");

        let direct_result = direct(&mut ka, &fxa);
        let dispatched_result = kb.dispatch(fxb.boot, call);
        assert_eq!(
            direct_result, dispatched_result,
            "{name}: result must be identical"
        );
        assert_eq!(
            ka.stats(),
            kb.stats(),
            "{name}: label checks and kernel counters must be identical"
        );
        assert_eq!(
            ka.object_count(),
            kb.object_count(),
            "{name}: object-table evolution must be identical"
        );
        assert_eq!(
            kb.dispatch_stats().count(name),
            Some(1),
            "{name}: dispatch must count exactly one invocation"
        );
    }
}

#[test]
fn failing_calls_dispatch_identically_too() {
    let failures: Vec<(&str, Syscall, Direct)> = {
        let (_, fx) = setup();
        let e_seg = entry(&fx, fx.seg);
        let bogus = ContainerEntry::new(fx.root, ObjectId::from_raw(0x7777));
        vec![
            (
                "read beyond end",
                Syscall::SegmentRead {
                    entry: e_seg,
                    offset: 1000,
                    len: 10,
                },
                Box::new(move |k: &mut Kernel, fx: &Fx| {
                    k.sys_segment_read(fx.boot, e_seg, 1000, 10)
                        .map(SyscallResult::Bytes)
                }),
            ),
            (
                "unref root",
                Syscall::ObjUnref {
                    entry: ContainerEntry::self_entry(fx.root),
                },
                Box::new(move |k: &mut Kernel, fx: &Fx| {
                    k.sys_obj_unref(fx.boot, ContainerEntry::self_entry(fx.root))
                        .map(|()| SyscallResult::Unit)
                }),
            ),
            (
                "no such object",
                Syscall::SegmentLen { entry: bogus },
                Box::new(move |k: &mut Kernel, fx: &Fx| {
                    k.sys_segment_len(fx.boot, bogus).map(SyscallResult::U64)
                }),
            ),
            (
                "over-privileged gate entry",
                Syscall::GateEnter {
                    gate: entry(&fx, fx.gate),
                    requested: Label::builder().own(Category::from_raw(999_999)).build(),
                    requested_clearance: Label::default_clearance(),
                    verify: Label::unrestricted(),
                },
                {
                    let g = entry(&fx, fx.gate);
                    Box::new(move |k: &mut Kernel, fx: &Fx| {
                        k.sys_gate_enter(
                            fx.boot,
                            g,
                            Label::builder().own(Category::from_raw(999_999)).build(),
                            Label::default_clearance(),
                            Label::unrestricted(),
                        )
                        .map(SyscallResult::GateEntry)
                    })
                },
            ),
        ]
    };
    for (what, call, direct) in failures {
        let (mut ka, fxa) = setup();
        let (mut kb, fxb) = setup();
        let a = direct(&mut ka, &fxa);
        let b = kb.dispatch(fxb.boot, call);
        assert!(a.is_err(), "{what}: expected failure");
        assert_eq!(a, b, "{what}: identical error through both paths");
        assert_eq!(ka.stats(), kb.stats(), "{what}: identical error counters");
    }
}
