//! Property-style equivalence test: for every [`Syscall`] variant,
//! trapping through `Kernel::dispatch` and calling the corresponding
//! `sys_*` method directly produce identical results, identical label-check
//! outcomes and identical kernel state evolution.
//!
//! Two kernels are built from the same seed with the same deterministic
//! setup script, so their object IDs, category names and labels coincide
//! exactly.  Each case then executes one call — direct on kernel A,
//! dispatched on kernel B — and the test compares the (typed) results, the
//! aggregate [`SyscallStats`] (which count every label comparison), and the
//! resulting object counts.  A coverage check guarantees no syscall variant
//! is left untested.

use histar_kernel::abi::{CompletionKind, SqEntry, SqOp, SubmissionQueue};
use histar_kernel::bodies::{DeviceBody, Mapping, MappingFlags};
use histar_kernel::dispatch::{Syscall, SyscallResult, SYSCALL_COUNT};
use histar_kernel::kernel::RemoteCategoryName;
use histar_kernel::object::{ContainerEntry, ObjectId, METADATA_LEN};
use histar_kernel::syscall::{SyscallError, SyscallStats};
use histar_kernel::Kernel;
use histar_label::{Category, Label, Level};
use histar_sim::SimClock;
use histar_store::records::inode_key;
use histar_store::{SingleLevelStore, StoreConfig, PERSIST_KEY_BASE};

/// Deterministic fixture shared by both kernels of every case.
struct Fx {
    root: ObjectId,
    boot: ObjectId,
    peer: ObjectId,
    cat: Category,
    cat_unbound: Category,
    bound_name: RemoteCategoryName,
    dir: ObjectId,
    seg: ObjectId,
    fixed: ObjectId,
    aspace: ObjectId,
    gate: ObjectId,
    gate_label: Label,
    dev: ObjectId,
    /// A pre-created persist record (the store is attached in setup).
    pkey: u64,
}

fn entry(fx: &Fx, o: ObjectId) -> ContainerEntry {
    ContainerEntry::new(fx.root, o)
}

/// Builds one kernel with a rich, fully deterministic state touching every
/// object type.
fn setup() -> (Kernel, Fx) {
    let mut k = Kernel::new(0x0d15_ea5e, None);
    // A deterministic store so the persist-record syscalls are live.
    k.attach_store(SingleLevelStore::format(
        StoreConfig::default(),
        SimClock::new(),
    ));
    let root = k.root_container();
    let boot = k
        .bootstrap_thread(
            root,
            Label::unrestricted(),
            Label::default_clearance(),
            "init",
        )
        .unwrap();
    let cat = k.sys_create_category(boot).unwrap();
    let cat_unbound = k.sys_create_category(boot).unwrap();
    let bound_name: RemoteCategoryName = (0xaaaa, 1);
    k.sys_category_bind_remote(boot, cat, bound_name).unwrap();
    let dir = k
        .sys_container_create(boot, root, Label::unrestricted(), "dir", 0, 1 << 20)
        .unwrap();
    let seg = k
        .sys_segment_create(boot, root, Label::unrestricted(), 256, "seg")
        .unwrap();
    k.sys_segment_write(boot, ContainerEntry::new(root, seg), 0, b"deterministic")
        .unwrap();
    let fixed = k
        .sys_segment_create(boot, root, Label::unrestricted(), 64, "fixed")
        .unwrap();
    k.sys_obj_set_fixed_quota(boot, ContainerEntry::new(root, fixed))
        .unwrap();
    let aspace = k
        .sys_as_create(boot, root, Label::unrestricted(), "as")
        .unwrap();
    k.sys_as_map(
        boot,
        ContainerEntry::new(root, aspace),
        Mapping {
            va: 0x10_0000,
            segment: ContainerEntry::new(root, seg),
            offset: 0,
            npages: 1,
            flags: MappingFlags::rw(),
        },
    )
    .unwrap();
    k.sys_self_set_as(boot, ContainerEntry::new(root, aspace))
        .unwrap();
    let gate_label = k.thread_label(boot).unwrap();
    let gate = k
        .sys_gate_create(
            boot,
            root,
            gate_label.clone(),
            Label::default_clearance(),
            None,
            0x40,
            vec![7, 8],
            "gate",
        )
        .unwrap();
    // The peer inherits boot's address space, so alerts can reach both.
    let peer = k
        .sys_thread_create(
            boot,
            root,
            Label::unrestricted(),
            Label::default_clearance(),
            0,
            "peer",
        )
        .unwrap();
    // One pending alert for boot, so SelfTakeAlert has something to take.
    k.sys_thread_alert(peer, ContainerEntry::new(root, boot), 5)
        .unwrap();
    let dev = k
        .boot_create_device(
            root,
            Label::unrestricted(),
            DeviceBody::network([2, 2, 2, 2, 2, 2]),
            "eth0",
        )
        .unwrap();
    k.device_inject_rx(dev, vec![0xcc, 0xdd]).unwrap();
    let pkey = inode_key(42);
    k.sys_persist_put(
        boot,
        pkey,
        Some(Label::unrestricted()),
        0,
        b"persist-fixture",
    )
    .unwrap();
    (
        k,
        Fx {
            root,
            boot,
            peer,
            cat,
            cat_unbound,
            bound_name,
            dir,
            seg,
            fixed,
            aspace,
            gate,
            gate_label,
            dev,
            pkey,
        },
    )
}

type Direct = Box<dyn Fn(&mut Kernel, &Fx) -> Result<SyscallResult, SyscallError>>;

/// One equivalence case: the trapped call and the equivalent direct call,
/// with the direct result wrapped into the same typed envelope.
fn cases(fx: &Fx) -> Vec<(Syscall, Direct)> {
    use SyscallResult as R;
    let e_seg = entry(fx, fx.seg);
    let e_fixed = entry(fx, fx.fixed);
    let e_dir = entry(fx, fx.dir);
    let e_as = entry(fx, fx.aspace);
    let e_gate = entry(fx, fx.gate);
    let e_dev = entry(fx, fx.dev);
    let e_peer = entry(fx, fx.peer);
    let tainted = Label::builder()
        .own(fx.cat)
        .set(fx.cat_unbound, Level::L2)
        .build();
    let raised_clearance = Label::default_clearance().with(fx.cat_unbound, Level::L3);
    let gate_request = fx.gate_label.clone();
    let new_mapping = Mapping {
        va: 0x20_0000,
        segment: e_seg,
        offset: 0,
        npages: 1,
        flags: MappingFlags::ro(),
    };

    vec![
        (
            Syscall::CreateCategory,
            Box::new(|k, fx| k.sys_create_category(fx.boot).map(R::Category)),
        ),
        (
            Syscall::SelfSetLabel {
                label: tainted.clone(),
            },
            {
                let l = tainted.clone();
                Box::new(move |k, fx| k.sys_self_set_label(fx.boot, l.clone()).map(|()| R::Unit))
            },
        ),
        (
            Syscall::SelfSetClearance {
                clearance: raised_clearance.clone(),
            },
            {
                let c = raised_clearance.clone();
                Box::new(move |k, fx| {
                    k.sys_self_set_clearance(fx.boot, c.clone())
                        .map(|()| R::Unit)
                })
            },
        ),
        (
            Syscall::SelfGetLabel,
            Box::new(|k, fx| k.sys_self_get_label(fx.boot).map(R::Label)),
        ),
        (
            Syscall::SelfGetClearance,
            Box::new(|k, fx| k.sys_self_get_clearance(fx.boot).map(R::Label)),
        ),
        (
            Syscall::ContainerCreate {
                parent: fx.root,
                label: Label::unrestricted(),
                descrip: "c2".into(),
                avoid_types: 0,
                quota: 1 << 16,
            },
            Box::new(|k, fx| {
                k.sys_container_create(fx.boot, fx.root, Label::unrestricted(), "c2", 0, 1 << 16)
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::ObjUnref { entry: e_dir },
            Box::new(move |k, fx| k.sys_obj_unref(fx.boot, e_dir).map(|()| R::Unit)),
        ),
        (
            Syscall::HardLink {
                entry: e_fixed,
                dst: fx.dir,
            },
            Box::new(move |k, fx| k.sys_hard_link(fx.boot, e_fixed, fx.dir).map(|()| R::Unit)),
        ),
        (
            Syscall::ContainerQuotaAvail { container: fx.dir },
            Box::new(|k, fx| k.sys_container_quota_avail(fx.boot, fx.dir).map(R::U64)),
        ),
        (
            Syscall::ContainerGetParent { container: fx.dir },
            Box::new(|k, fx| k.sys_container_get_parent(fx.boot, fx.dir).map(R::ObjectId)),
        ),
        (
            Syscall::ContainerList { container: fx.root },
            Box::new(|k, fx| k.sys_container_list(fx.boot, fx.root).map(R::ObjectIds)),
        ),
        (
            Syscall::QuotaMove {
                container: fx.root,
                object: fx.dir,
                delta: 4096,
            },
            Box::new(|k, fx| {
                k.sys_quota_move(fx.boot, fx.root, fx.dir, 4096)
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::ObjGetLabel { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_get_label(fx.boot, e_seg).map(R::Label)),
        ),
        (
            Syscall::ObjGetInfo { entry: e_seg },
            Box::new(move |k, fx| {
                k.sys_obj_get_info(fx.boot, e_seg)
                    .map(|(object_type, descrip, quota)| R::Info {
                        object_type,
                        descrip,
                        quota,
                    })
            }),
        ),
        (
            Syscall::ObjGetMetadata { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_get_metadata(fx.boot, e_seg).map(R::Metadata)),
        ),
        (
            Syscall::ObjSetMetadata {
                entry: e_seg,
                metadata: [7; METADATA_LEN],
            },
            Box::new(move |k, fx| {
                k.sys_obj_set_metadata(fx.boot, e_seg, [7; METADATA_LEN])
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::ObjSetImmutable { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_set_immutable(fx.boot, e_seg).map(|()| R::Unit)),
        ),
        (
            Syscall::ObjSetFixedQuota { entry: e_seg },
            Box::new(move |k, fx| k.sys_obj_set_fixed_quota(fx.boot, e_seg).map(|()| R::Unit)),
        ),
        (
            Syscall::SegmentCreate {
                container: fx.root,
                label: Label::unrestricted(),
                len: 64,
                descrip: "new".into(),
            },
            Box::new(|k, fx| {
                k.sys_segment_create(fx.boot, fx.root, Label::unrestricted(), 64, "new")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::SegmentResize {
                entry: e_seg,
                len: 512,
            },
            Box::new(move |k, fx| k.sys_segment_resize(fx.boot, e_seg, 512).map(|()| R::Unit)),
        ),
        (
            Syscall::SegmentRead {
                entry: e_seg,
                offset: 0,
                len: 13,
            },
            Box::new(move |k, fx| k.sys_segment_read(fx.boot, e_seg, 0, 13).map(R::Bytes)),
        ),
        (
            Syscall::SegmentWrite {
                entry: e_seg,
                offset: 4,
                data: b"xyz".to_vec(),
            },
            Box::new(move |k, fx| {
                k.sys_segment_write(fx.boot, e_seg, 4, b"xyz")
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::SegmentLen { entry: e_seg },
            Box::new(move |k, fx| k.sys_segment_len(fx.boot, e_seg).map(R::U64)),
        ),
        (
            Syscall::SegmentCopy {
                src: e_seg,
                dst_container: fx.root,
                label: Label::unrestricted(),
                descrip: "copy".into(),
            },
            Box::new(move |k, fx| {
                k.sys_segment_copy(fx.boot, e_seg, fx.root, Label::unrestricted(), "copy")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::AsCreate {
                container: fx.root,
                label: Label::unrestricted(),
                descrip: "as2".into(),
            },
            Box::new(|k, fx| {
                k.sys_as_create(fx.boot, fx.root, Label::unrestricted(), "as2")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::AsCopy {
                src: e_as,
                dst_container: fx.root,
                label: Label::unrestricted(),
                descrip: "asc".into(),
            },
            Box::new(move |k, fx| {
                k.sys_as_copy(fx.boot, e_as, fx.root, Label::unrestricted(), "asc")
                    .map(R::ObjectId)
            }),
        ),
        (
            Syscall::AsMap {
                aspace: e_as,
                mapping: new_mapping,
            },
            Box::new(move |k, fx| k.sys_as_map(fx.boot, e_as, new_mapping).map(|()| R::Unit)),
        ),
        (
            Syscall::AsUnmap {
                aspace: e_as,
                va: 0x10_0000,
            },
            Box::new(move |k, fx| k.sys_as_unmap(fx.boot, e_as, 0x10_0000).map(|()| R::Unit)),
        ),
        (
            Syscall::SelfSetAs { aspace: e_as },
            Box::new(move |k, fx| k.sys_self_set_as(fx.boot, e_as).map(|()| R::Unit)),
        ),
        (
            Syscall::PageFault {
                va: 0x10_0000,
                write: false,
            },
            Box::new(|k, fx| {
                k.sys_page_fault(fx.boot, 0x10_0000, false)
                    .map(R::PageFault)
            }),
        ),
        (
            Syscall::ThreadCreate {
                container: fx.root,
                label: Label::unrestricted(),
                clearance: Label::default_clearance(),
                entry_point: 9,
                descrip: "t2".into(),
            },
            Box::new(|k, fx| {
                k.sys_thread_create(
                    fx.boot,
                    fx.root,
                    Label::unrestricted(),
                    Label::default_clearance(),
                    9,
                    "t2",
                )
                .map(R::ObjectId)
            }),
        ),
        (
            Syscall::SelfLocalSegment,
            Box::new(|k, fx| k.sys_self_local_segment(fx.boot).map(R::ObjectId)),
        ),
        (
            Syscall::SelfHalt,
            Box::new(|k, fx| k.sys_self_halt(fx.boot).map(|()| R::Unit)),
        ),
        (
            Syscall::ThreadAlert {
                target: e_peer,
                code: 3,
            },
            Box::new(move |k, fx| k.sys_thread_alert(fx.boot, e_peer, 3).map(|()| R::Unit)),
        ),
        (
            Syscall::SelfTakeAlert,
            Box::new(|k, fx| k.sys_self_take_alert(fx.boot).map(R::Alert)),
        ),
        (
            Syscall::ThreadGetLabel { target: e_peer },
            Box::new(move |k, fx| k.sys_thread_get_label(fx.boot, e_peer).map(R::Label)),
        ),
        (
            Syscall::GateCreate {
                container: fx.root,
                label: fx.gate_label.clone(),
                clearance: Label::default_clearance(),
                address_space: None,
                entry_point: 0x44,
                closure_args: vec![1],
                descrip: "g2".into(),
            },
            {
                let gl = fx.gate_label.clone();
                Box::new(move |k, fx| {
                    k.sys_gate_create(
                        fx.boot,
                        fx.root,
                        gl.clone(),
                        Label::default_clearance(),
                        None,
                        0x44,
                        vec![1],
                        "g2",
                    )
                    .map(R::ObjectId)
                })
            },
        ),
        (
            Syscall::GateEnter {
                gate: e_gate,
                requested: gate_request.clone(),
                requested_clearance: Label::default_clearance(),
                verify: Label::unrestricted(),
            },
            {
                let req = gate_request.clone();
                Box::new(move |k, fx| {
                    k.sys_gate_enter(
                        fx.boot,
                        e_gate,
                        req.clone(),
                        Label::default_clearance(),
                        Label::unrestricted(),
                    )
                    .map(R::GateEntry)
                })
            },
        ),
        (
            Syscall::GateClearance { gate: e_gate },
            Box::new(move |k, fx| k.sys_gate_clearance(fx.boot, e_gate).map(R::Label)),
        ),
        (
            Syscall::CategoryBindRemote {
                category: fx.cat_unbound,
                name: (0xbbbb, 2),
            },
            Box::new(|k, fx| {
                k.sys_category_bind_remote(fx.boot, fx.cat_unbound, (0xbbbb, 2))
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::CategoryGetRemote { category: fx.cat },
            Box::new(|k, fx| {
                k.sys_category_get_remote(fx.boot, fx.cat)
                    .map(R::RemoteName)
            }),
        ),
        (
            Syscall::CategoryResolveRemote {
                name: fx.bound_name,
            },
            Box::new(|k, fx| {
                k.sys_category_resolve_remote(fx.boot, fx.bound_name)
                    .map(R::ResolvedCategory)
            }),
        ),
        (
            Syscall::NetMac { device: e_dev },
            Box::new(move |k, fx| k.sys_net_mac(fx.boot, e_dev).map(R::Mac)),
        ),
        (
            Syscall::NetTransmit {
                device: e_dev,
                frame: vec![0xee],
            },
            Box::new(move |k, fx| {
                k.sys_net_transmit(fx.boot, e_dev, vec![0xee])
                    .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::NetReceive { device: e_dev },
            Box::new(move |k, fx| k.sys_net_receive(fx.boot, e_dev).map(R::Frame)),
        ),
        (
            Syscall::PersistPut {
                key: inode_key(43),
                label: Some(Label::unrestricted()),
                offset: 4,
                data: b"spliced".to_vec(),
            },
            Box::new(|k, fx| {
                k.sys_persist_put(
                    fx.boot,
                    inode_key(43),
                    Some(Label::unrestricted()),
                    4,
                    b"spliced",
                )
                .map(|()| R::Unit)
            }),
        ),
        (
            Syscall::PersistRead {
                key: fx.pkey,
                offset: 0,
                len: u64::MAX,
            },
            Box::new(|k, fx| {
                k.sys_persist_read(fx.boot, fx.pkey, 0, u64::MAX)
                    .map(R::Bytes)
            }),
        ),
        (
            Syscall::PersistDelete { key: fx.pkey },
            Box::new(|k, fx| k.sys_persist_delete(fx.boot, fx.pkey).map(|()| R::Unit)),
        ),
        (
            Syscall::PersistScan {
                lo: PERSIST_KEY_BASE,
                hi: u64::MAX,
                max: 64,
            },
            Box::new(|k, fx| {
                k.sys_persist_scan(fx.boot, PERSIST_KEY_BASE, u64::MAX, 64)
                    .map(R::Records)
            }),
        ),
        (
            Syscall::PersistSync {
                keys: vec![fx.pkey],
            },
            Box::new(|k, fx| k.sys_persist_sync(fx.boot, &[fx.pkey]).map(|()| R::Unit)),
        ),
        (
            Syscall::PersistGetLabel { key: fx.pkey },
            Box::new(|k, fx| k.sys_persist_get_label(fx.boot, fx.pkey).map(R::Label)),
        ),
        (
            Syscall::SegmentWatch { entry: e_seg },
            Box::new(|k, fx| {
                k.sys_segment_watch(fx.boot, entry(fx, fx.seg))
                    .map(|()| R::Unit)
            }),
        ),
    ]
}

#[test]
fn every_syscall_dispatches_identically_to_its_direct_call() {
    let (_, fx_probe) = setup();
    let all = cases(&fx_probe);

    // Coverage: the case list must touch every ABI index exactly once.
    let mut seen = [false; SYSCALL_COUNT];
    for (call, _) in &all {
        assert!(!seen[call.index()], "duplicate case for {}", call.name());
        seen[call.index()] = true;
    }
    assert!(
        seen.iter().all(|s| *s),
        "missing cases: {:?}",
        (0..SYSCALL_COUNT)
            .filter(|&i| !seen[i])
            .map(|i| histar_kernel::dispatch::SYSCALL_NAMES[i])
            .collect::<Vec<_>>()
    );

    for (call, direct) in all {
        let name = call.name();
        let (mut ka, fxa) = setup();
        let (mut kb, fxb) = setup();
        assert_eq!(fxa.seg, fxb.seg, "setup must be deterministic");

        let direct_result = direct(&mut ka, &fxa);
        let dispatched_result = kb.dispatch(fxb.boot, call);
        assert_eq!(
            direct_result, dispatched_result,
            "{name}: result must be identical"
        );
        assert_eq!(
            ka.stats(),
            kb.stats(),
            "{name}: label checks and kernel counters must be identical"
        );
        assert_eq!(
            ka.object_count(),
            kb.object_count(),
            "{name}: object-table evolution must be identical"
        );
        assert_eq!(
            kb.dispatch_stats().count(name),
            Some(1),
            "{name}: dispatch must count exactly one invocation"
        );
        assert_eq!(
            kb.dispatch_stats().trace_dropped,
            0,
            "{name}: no audit record may be silently evicted"
        );
    }
}

/// Everything one execution of the full call sequence observed: per-call
/// results, the aggregate kernel counters (which include every label
/// check), the object-table size, and the audit-trace contents (tick
/// excluded — batching amortizes charged time by design; everything else
/// must be bit-identical).
#[derive(Debug, PartialEq)]
struct SequenceObservation {
    results: Vec<Result<SyscallResult, SyscallError>>,
    stats: SyscallStats,
    objects: usize,
    trace: Vec<(u64, ObjectId, &'static str, bool)>,
}

/// Runs the full every-variant call sequence against a fresh kernel, split
/// into submission batches of the given (cycled) sizes.  `sizes = [1]`
/// with `via_trap = true` is the classic one-call-per-trap stream.
fn run_sequence_in_batches(sizes: &[usize], via_trap: bool) -> SequenceObservation {
    let (mut k, fx) = setup();
    let calls: Vec<Syscall> = cases(&fx).into_iter().map(|(call, _)| call).collect();
    assert_eq!(calls.len(), SYSCALL_COUNT);
    k.enable_syscall_trace(4 * SYSCALL_COUNT);
    // The setup's thread_alert left a notification on boot's completion
    // queue; drain it so only this sequence's completions are reaped.
    let _ = k.reap_completions(fx.boot);

    let mut results = Vec::with_capacity(calls.len());
    let mut sizes_cycle = sizes.iter().copied().cycle();
    let mut remaining = &calls[..];
    while !remaining.is_empty() {
        let n = sizes_cycle.next().unwrap().clamp(1, remaining.len());
        let (chunk, rest) = remaining.split_at(n);
        remaining = rest;
        if via_trap {
            for call in chunk {
                results.push(k.dispatch(fx.boot, call.clone()));
            }
        } else {
            let entries: Vec<SqEntry> = chunk
                .iter()
                .enumerate()
                .map(|(i, call)| SqEntry {
                    user_data: i as u64,
                    op: SqOp::Call(call.clone()),
                })
                .collect();
            assert_eq!(k.dispatch_batch(fx.boot, entries), n);
            for completion in k.reap_completions(fx.boot) {
                results.push(completion.into_call_result());
            }
        }
    }

    let trace: Vec<(u64, ObjectId, &'static str, bool)> = k
        .syscall_trace()
        .expect("trace enabled")
        .records()
        .map(|r| (r.seq, r.tid, r.syscall, r.ok))
        .collect();
    // The ring was sized to hold the whole sequence: any eviction here
    // means the comparison below would silently cover a truncated trace.
    assert_eq!(
        k.dispatch_stats().trace_dropped,
        0,
        "audit trace must not drop records during the equivalence sweep"
    );
    SequenceObservation {
        results,
        stats: k.stats(),
        objects: k.object_count(),
        trace,
    }
}

#[test]
fn any_batch_split_is_equivalent_to_one_call_per_trap() {
    // The property the batched ABI must preserve: for the full every-variant
    // sequence, results, label-check counts (inside `SyscallStats`), audit
    // trace and object-table evolution are identical whether the calls
    // trap one at a time or in arbitrary batch splits.
    let reference = run_sequence_in_batches(&[1], true);
    assert_eq!(reference.results.len(), SYSCALL_COUNT);
    // The trace is continuous from seq 0 with one record per call.
    for (i, rec) in reference.trace.iter().enumerate() {
        assert_eq!(rec.0, i as u64, "TraceRecord.seq must be continuous");
    }

    for sizes in [
        vec![1],                      // 1-entry batches (the trap_* shim path)
        vec![SYSCALL_COUNT],          // one giant batch
        vec![2],                      // pairs
        vec![3, 1, 4, 1, 5, 9, 2, 6], // arbitrary mixed splits
        vec![7, 13],
    ] {
        let split = run_sequence_in_batches(&sizes, false);
        assert_eq!(
            split, reference,
            "batch split {sizes:?} must observe exactly the sequential stream"
        );
    }
}

#[test]
fn handle_encoded_calls_are_equivalent_to_raw_entries() {
    let (mut ka, fxa) = setup();
    let (mut kb, fxb) = setup();
    let e_seg_a = entry(&fxa, fxa.seg);
    let e_seg_b = entry(&fxb, fxb.seg);

    // Kernel B resolves the segment into a capability handle; the install
    // performs the same reachability check every syscall performs, hence
    // exactly one extra label check relative to kernel A.
    let checks_before = kb.stats().label_checks - ka.stats().label_checks;
    assert_eq!(checks_before, 0, "identical setups");
    let h = kb.handle_open(fxb.boot, e_seg_b).unwrap();
    let install_checks = kb.stats().label_checks - ka.stats().label_checks;
    assert!(
        install_checks >= 1,
        "handle install is reachability-checked"
    );

    let ra = ka.dispatch(
        fxa.boot,
        Syscall::SegmentRead {
            entry: e_seg_a,
            offset: 0,
            len: 13,
        },
    );
    let rb = kb.dispatch(
        fxb.boot,
        Syscall::SegmentRead {
            entry: h.entry(),
            offset: 0,
            len: 13,
        },
    );
    assert_eq!(ra, rb, "handle naming must not change the result");
    assert_eq!(
        kb.stats().label_checks - ka.stats().label_checks,
        install_checks,
        "the dispatched call performs identical label checks either way"
    );

    // A thread that could not traverse to an object cannot install a
    // handle for it: reachability is checked at install time.
    let secret = Label::builder().set(fxb.cat_unbound, Level::L3).build();
    let hidden_dir = kb
        .sys_container_create(fxb.boot, fxb.root, secret, "hidden", 0, 1 << 16)
        .unwrap();
    let peer_err = kb
        .handle_open(fxb.peer, ContainerEntry::new(hidden_dir, fxb.seg))
        .unwrap_err();
    assert!(
        matches!(peer_err, SyscallError::CannotObserve(_)),
        "unreachable container must be refused, got {peer_err:?}"
    );
}

#[test]
fn handle_open_reuse_hits_the_reverse_index_not_a_rescan() {
    let (mut k, fx) = setup();
    // Fill the thread's table with many unrelated handles (one per
    // sibling object), the regime where the old linear slot scan hurt.
    let mut others = Vec::new();
    for i in 0..64 {
        let seg = k
            .sys_segment_create(
                fx.boot,
                fx.root,
                Label::unrestricted(),
                16,
                &format!("s{i}"),
            )
            .unwrap();
        others.push(k.handle_open(fx.boot, entry(&fx, seg)).unwrap());
    }
    let e_seg = entry(&fx, fx.seg);
    let reuses_before = k.dispatch_stats().handle_reuses;
    let first = k.handle_open_reuse(fx.boot, e_seg).unwrap();
    assert_eq!(
        k.dispatch_stats().handle_reuses,
        reuses_before,
        "first resolution installs, it does not reuse"
    );
    // Every subsequent resolution of the same entry reuses the installed
    // handle — the `handle_reuses` stat counts exactly those index hits.
    for round in 1..=10 {
        let again = k.handle_open_reuse(fx.boot, e_seg).unwrap();
        assert_eq!(again, first);
        assert_eq!(k.dispatch_stats().handle_reuses, reuses_before + round);
    }
    // Closing the handle empties the index slot; the next open installs
    // fresh instead of reusing a stale one.
    assert!(k.handle_close(fx.boot, first));
    let fresh = k.handle_open_reuse(fx.boot, e_seg).unwrap();
    assert_eq!(
        k.dispatch_stats().handle_reuses,
        reuses_before + 10,
        "a closed handle must not be reused"
    );
    assert_eq!(k.handle_entry(fx.boot, fresh), Some(e_seg));
}

#[test]
fn handles_are_revoked_on_unref() {
    let (mut k, fx) = setup();
    let e_seg = entry(&fx, fx.seg);
    let h = k.handle_open(fx.boot, e_seg).unwrap();
    assert_eq!(k.handle_entry(fx.boot, h), Some(e_seg));

    // Unreferencing the link revokes every handle installed through it.
    k.trap_obj_unref(fx.boot, e_seg).unwrap();
    assert_eq!(k.handle_entry(fx.boot, h), None);
    let err = k
        .dispatch(fx.boot, Syscall::SegmentLen { entry: h.entry() })
        .unwrap_err();
    assert_eq!(err, SyscallError::BadHandle(h.raw()));
    // The failed call is still audited/counted like any other error.
    assert_eq!(k.dispatch_stats().count("segment_len"), Some(1));
    assert_eq!(k.dispatch_stats().total_errors(), 1);
}

#[test]
fn revocation_reaches_every_holder_through_the_holder_index() {
    // The kernel keeps a reverse index from object to the threads holding
    // handles on it, so a revocation sweep visits the holders instead of
    // every thread in the system.  The sweep must stay exact under the
    // index's edge cases: multiple handles from one thread, holders on
    // other threads, closed handles, and holder threads that died.
    let (mut k, fx) = setup();
    let e_seg = entry(&fx, fx.seg);
    let boot_h1 = k.handle_open(fx.boot, e_seg).unwrap();
    let boot_h2 = k.handle_open(fx.boot, e_seg).unwrap();
    let peer_h = k.handle_open(fx.peer, e_seg).unwrap();

    // Closing one of boot's handles must not release the other.
    assert!(k.handle_close(fx.boot, boot_h1));
    assert_eq!(k.handle_entry(fx.boot, boot_h2), Some(e_seg));

    // Unref revokes the survivors on BOTH holder threads.
    k.trap_obj_unref(fx.boot, e_seg).unwrap();
    assert_eq!(k.handle_entry(fx.boot, boot_h2), None);
    assert_eq!(k.handle_entry(fx.peer, peer_h), None);

    // A holder thread that dies drops out of the index: revoking the
    // object afterwards must not trip over the dead thread's entries.
    let seg2 = k
        .sys_segment_create(fx.boot, fx.root, Label::unrestricted(), 16, "s2")
        .unwrap();
    let e_seg2 = entry(&fx, seg2);
    let _peer_h2 = k.handle_open(fx.peer, e_seg2).unwrap();
    k.trap_obj_unref(fx.boot, ContainerEntry::new(fx.root, fx.peer))
        .unwrap();
    k.trap_obj_unref(fx.boot, e_seg2).unwrap();
    let boot_h3_err = k.handle_open(fx.boot, e_seg2).unwrap_err();
    assert!(
        matches!(boot_h3_err, SyscallError::NotInContainer { .. }),
        "the unref severed the segment's link, got {boot_h3_err:?}"
    );
}

#[test]
fn mixed_batches_interleave_calls_and_handle_ops() {
    let (mut k, fx) = setup();
    let _ = k.reap_completions(fx.boot);
    let mut sq = SubmissionQueue::new();
    let open_token = sq.open_handle(entry(&fx, fx.seg));
    let read_token = sq.call(Syscall::SegmentRead {
        entry: entry(&fx, fx.seg),
        offset: 0,
        len: 13,
    });
    assert_eq!(k.submit(fx.boot, &mut sq), 2);
    let completions = k.reap_completions(fx.boot);
    assert_eq!(completions.len(), 2);
    assert_eq!(completions[0].user_data, open_token);
    let h = match &completions[0].kind {
        CompletionKind::HandleOpened(Ok(h)) => *h,
        other => panic!("expected a handle, got {other:?}"),
    };
    assert_eq!(completions[1].user_data, read_token);

    // Use the fresh handle in a follow-up batch, then close it.
    let mut sq = SubmissionQueue::new();
    sq.call(Syscall::SegmentLen { entry: h.entry() });
    sq.close_handle(h);
    k.submit(fx.boot, &mut sq);
    let completions = k.reap_completions(fx.boot);
    assert_eq!(
        completions[0].kind,
        CompletionKind::Call(Ok(SyscallResult::U64(256))),
    );
    assert_eq!(completions[1].kind, CompletionKind::HandleClosed(true));
    assert_eq!(k.handle_count(fx.boot), 0);
}

#[test]
fn submit_calls_skips_kernel_notifications_pushed_mid_batch() {
    // An entry inside the batch can alert the submitting thread itself,
    // interleaving a kernel-originated AlertPending completion between
    // the batch's own completions.  submit_calls must still hand back
    // exactly the submitted calls' results, in order, and leave the
    // notification queued for the thread to reap.
    let (mut k, fx) = setup();
    let _ = k.reap_completions(fx.boot);
    let results = k.submit_calls(
        fx.boot,
        vec![
            Syscall::CreateCategory,
            Syscall::ThreadAlert {
                target: ContainerEntry::new(fx.root, fx.boot),
                code: 7,
            },
            Syscall::SelfGetLabel,
        ],
    );
    assert_eq!(results.len(), 3);
    assert!(matches!(results[0], Ok(SyscallResult::Category(_))));
    assert_eq!(results[1], Ok(SyscallResult::Unit));
    assert!(matches!(results[2], Ok(SyscallResult::Label(_))));
    let left = k.reap_completions(fx.boot);
    assert_eq!(left.len(), 1, "the alert notification stays queued");
    assert!(matches!(
        left[0].kind,
        CompletionKind::AlertPending { code: 7 }
    ));
}

#[test]
fn batch_that_tears_down_its_own_thread_still_reports_every_result() {
    // An entry may unref the calling thread's last link, deallocating the
    // thread (and its completion queue) mid-batch.  submit_calls must
    // still return one aligned result per entry, and the dead thread's
    // queue must not be resurrected for completions nobody can reap.
    let (mut k, fx) = setup();
    let objects_before = k.object_count();
    let results = k.submit_calls(
        fx.boot,
        vec![
            Syscall::CreateCategory,
            Syscall::ObjUnref {
                entry: ContainerEntry::new(fx.root, fx.boot),
            },
            Syscall::SelfGetLabel,
        ],
    );
    assert_eq!(results.len(), 3);
    assert!(matches!(results[0], Ok(SyscallResult::Category(_))));
    assert_eq!(results[1], Ok(SyscallResult::Unit));
    assert_eq!(
        results[2],
        Err(SyscallError::NoSuchObject(fx.boot)),
        "entries after the teardown fail like any call from a dead thread"
    );
    assert_eq!(k.object_count(), objects_before - 1, "the thread is gone");
    assert_eq!(k.completion_count(fx.boot), 0, "no resurrected queue");
}

#[test]
fn taking_an_alert_consumes_its_notification() {
    let (mut k, fx) = setup();
    let _ = k.reap_completions(fx.boot);
    k.trap_thread_alert(fx.boot, entry(&fx, fx.boot), 9)
        .unwrap();
    assert!(k.completion_pending(fx.boot));
    // Claiming the alert removes the notification with it — otherwise a
    // blocked thread would be re-woken by the stale completion forever.
    // (The fixture queued one alert during setup; drain both.)
    assert!(k.trap_self_take_alert(fx.boot).unwrap().is_some());
    assert!(k.trap_self_take_alert(fx.boot).unwrap().is_some());
    assert!(!k.completion_pending(fx.boot));
}

#[test]
fn failing_calls_dispatch_identically_too() {
    let failures: Vec<(&str, Syscall, Direct)> = {
        let (_, fx) = setup();
        let e_seg = entry(&fx, fx.seg);
        let bogus = ContainerEntry::new(fx.root, ObjectId::from_raw(0x7777));
        vec![
            (
                "read beyond end",
                Syscall::SegmentRead {
                    entry: e_seg,
                    offset: 1000,
                    len: 10,
                },
                Box::new(move |k: &mut Kernel, fx: &Fx| {
                    k.sys_segment_read(fx.boot, e_seg, 1000, 10)
                        .map(SyscallResult::Bytes)
                }),
            ),
            (
                "unref root",
                Syscall::ObjUnref {
                    entry: ContainerEntry::self_entry(fx.root),
                },
                Box::new(move |k: &mut Kernel, fx: &Fx| {
                    k.sys_obj_unref(fx.boot, ContainerEntry::self_entry(fx.root))
                        .map(|()| SyscallResult::Unit)
                }),
            ),
            (
                "no such object",
                Syscall::SegmentLen { entry: bogus },
                Box::new(move |k: &mut Kernel, fx: &Fx| {
                    k.sys_segment_len(fx.boot, bogus).map(SyscallResult::U64)
                }),
            ),
            (
                "over-privileged gate entry",
                Syscall::GateEnter {
                    gate: entry(&fx, fx.gate),
                    requested: Label::builder().own(Category::from_raw(999_999)).build(),
                    requested_clearance: Label::default_clearance(),
                    verify: Label::unrestricted(),
                },
                {
                    let g = entry(&fx, fx.gate);
                    Box::new(move |k: &mut Kernel, fx: &Fx| {
                        k.sys_gate_enter(
                            fx.boot,
                            g,
                            Label::builder().own(Category::from_raw(999_999)).build(),
                            Label::default_clearance(),
                            Label::unrestricted(),
                        )
                        .map(SyscallResult::GateEntry)
                    })
                },
            ),
        ]
    };
    for (what, call, direct) in failures {
        let (mut ka, fxa) = setup();
        let (mut kb, fxb) = setup();
        let a = direct(&mut ka, &fxa);
        let b = kb.dispatch(fxb.boot, call);
        assert!(a.is_err(), "{what}: expected failure");
        assert_eq!(a, b, "{what}: identical error through both paths");
        assert_eq!(ka.stats(), kb.stats(), "{what}: identical error counters");
    }
}
