//! Scale and determinism tests for the sharded scheduler: the audit
//! trace is byte-identical for a fixed `(seed, shard count)` pair at
//! every shard width, and waking one thread out of a 10⁵-strong parked
//! population costs O(events), not O(parked).

use histar_kernel::object::ContainerEntry;
use histar_kernel::sched::{RunLimit, SchedConfig, Scheduler, Step, StopReason};
use histar_kernel::{Machine, MachineConfig, ObjectId, TraceRecord};
use histar_label::Label;
use histar_sim::SimDuration;

fn spawn_thread(m: &mut Machine, name: &str) -> ObjectId {
    let boot = m.kernel_thread();
    let root = m.kernel().root_container();
    m.kernel_mut()
        .trap_thread_create(
            boot,
            root,
            Label::unrestricted(),
            Label::default_clearance(),
            0,
            name,
        )
        .unwrap()
}

/// Runs a small labeled workload — writers appending to a shared segment,
/// one blocker woken by an alert — under `config`, returning the full
/// audit trace.
fn traced_run(config: SchedConfig) -> Vec<TraceRecord> {
    let mut m = Machine::boot(MachineConfig::default());
    m.kernel_mut().enable_syscall_trace(1 << 16);
    let boot = m.kernel_thread();
    let root = m.kernel().root_container();
    let seg = m
        .kernel_mut()
        .trap_segment_create(boot, root, Label::unrestricted(), 0, "log")
        .unwrap();
    let entry = ContainerEntry::new(root, seg);
    let mut sched: Scheduler<Machine> = Scheduler::new(config);
    for i in 0..12u8 {
        let tid = spawn_thread(&mut m, &format!("w{i}"));
        let mut remaining = 4;
        sched.spawn(
            tid,
            Box::new(move |m: &mut Machine, tid| {
                let len = m.kernel_mut().trap_segment_len(tid, entry).unwrap();
                m.kernel_mut()
                    .trap_segment_write(tid, entry, len, &[i])
                    .unwrap();
                remaining -= 1;
                if remaining == 0 {
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    let report = m.run_until(&mut sched, RunLimit::to_completion());
    assert_eq!(report.stop, StopReason::AllComplete);
    m.kernel()
        .syscall_trace()
        .unwrap()
        .records()
        .copied()
        .collect()
}

#[test]
fn audit_trace_is_byte_identical_per_seed_at_every_shard_count() {
    for shards in [1, 4, 16] {
        let config = SchedConfig::new()
            .seed(0x5ca1e)
            .quantum(SimDuration::from_micros(25))
            .shards(shards);
        let t1 = traced_run(config);
        let t2 = traced_run(config);
        assert!(!t1.is_empty());
        assert_eq!(
            t1, t2,
            "same (seed, shards={shards}) must replay the identical syscall stream"
        );
    }
    // Different shard counts are different interleavings of the same
    // work: the multiset of trace records matters less than the fact the
    // workload still completes — checked inside traced_run — but the
    // record count is interleaving-independent.
    let a = traced_run(SchedConfig::new().seed(0x5ca1e).shards(1));
    let b = traced_run(SchedConfig::new().seed(0x5ca1e).shards(16));
    assert_eq!(a.len(), b.len());
}

#[test]
fn waking_one_of_a_hundred_thousand_parked_threads_is_o_events() {
    const USERS: usize = 100_000;
    let mut m = Machine::boot(MachineConfig::default());
    let boot = m.kernel_thread();
    let root = m.kernel().root_container();
    let mut sched: Scheduler<Machine> = Scheduler::new(SchedConfig::new().seed(0xbead));
    let mut tids = Vec::with_capacity(USERS);
    for i in 0..USERS {
        let tid = m
            .kernel_mut()
            .trap_thread_create(
                boot,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                &format!("u{i}"),
            )
            .unwrap();
        tids.push(tid);
        let mut parked = false;
        sched.spawn(
            tid,
            Box::new(move |_m: &mut Machine, _tid| {
                if parked {
                    Step::Done
                } else {
                    parked = true;
                    Step::Block
                }
            }),
        );
    }
    let admit = m.run_until(&mut sched, RunLimit::to_completion());
    assert_eq!(admit.stop, StopReason::AllBlocked);
    assert_eq!(admit.stats.parked_high_water, USERS as u64);

    // Dirty exactly one thread; the wake pass must examine exactly that
    // thread and charge exactly one quantum — never rescan the other
    // 99,999 parked threads.
    let target = tids[USERS / 2];
    m.kernel_mut().sched_wake(target).unwrap();
    let wake = m.run_until(&mut sched, RunLimit::to_completion());
    assert_eq!(wake.stop, StopReason::AllBlocked);
    assert_eq!(wake.stats.completed, 1, "exactly the woken thread retires");
    assert_eq!(wake.stats.quanta, 1, "one quantum for the woken thread");
    assert_eq!(wake.stats.wake_passes, 1);
    assert_eq!(
        wake.stats.wake_examined, 1,
        "the wake pass examined only the dirtied thread"
    );
}
