//! Golden fixtures: every file under `fixtures/<rule>/bad/` must produce
//! at least one finding for that rule; every file under
//! `fixtures/<rule>/good/` must produce none.

use flowcheck::model::SourceFile;
use std::path::{Path, PathBuf};

fn fixture_dir(rule: &str, verdict: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(verdict)
}

fn analyze_fixture(rule: &str, path: &Path) -> flowcheck::Analysis {
    let text = std::fs::read_to_string(path).unwrap();
    let parsed = SourceFile::parse(&path.display().to_string(), &text);
    match rule {
        "mediation" => flowcheck::analyze(std::slice::from_ref(&parsed), &[]),
        "determinism" => flowcheck::analyze(&[], std::slice::from_ref(&parsed)),
        other => panic!("unknown rule {other}"),
    }
}

fn run_dir(rule: &str, verdict: &str) -> Vec<(PathBuf, flowcheck::Analysis)> {
    let dir = fixture_dir(rule, verdict);
    let files = flowcheck::rust_files(&dir);
    assert!(
        !files.is_empty(),
        "no fixtures in {} — fixture sweep would vacuously pass",
        dir.display()
    );
    files
        .into_iter()
        .map(|p| {
            let a = analyze_fixture(rule, &p);
            (p, a)
        })
        .collect()
}

#[test]
fn mediation_bad_fixtures_all_fail() {
    let results = run_dir("mediation", "bad");
    assert!(results.len() >= 6, "need >=6 must-fail mediation fixtures");
    for (path, a) in results {
        assert!(
            !a.ok(),
            "{} should produce a mediation finding but passed",
            path.display()
        );
        assert!(
            a.findings.iter().all(|f| f.rule == "mediation"),
            "{} produced non-mediation findings: {:?}",
            path.display(),
            a.findings
        );
    }
}

#[test]
fn mediation_good_fixtures_all_pass() {
    let results = run_dir("mediation", "good");
    assert!(results.len() >= 4, "need >=4 must-pass mediation fixtures");
    for (path, a) in results {
        assert!(
            a.ok(),
            "{} should pass but produced: {:?}",
            path.display(),
            a.findings
        );
    }
}

#[test]
fn determinism_bad_fixtures_all_fail() {
    let results = run_dir("determinism", "bad");
    assert!(
        results.len() >= 6,
        "need >=6 must-fail determinism fixtures"
    );
    for (path, a) in results {
        assert!(
            !a.ok(),
            "{} should produce a determinism finding but passed",
            path.display()
        );
        assert!(
            a.findings.iter().all(|f| f.rule == "determinism"),
            "{} produced non-determinism findings: {:?}",
            path.display(),
            a.findings
        );
    }
}

#[test]
fn determinism_good_fixtures_all_pass() {
    let results = run_dir("determinism", "good");
    assert!(
        results.len() >= 4,
        "need >=4 must-pass determinism fixtures"
    );
    for (path, a) in results {
        assert!(
            a.ok(),
            "{} should pass but produced: {:?}",
            path.display(),
            a.findings
        );
    }
}

#[test]
fn exempt_fixtures_surface_their_markers() {
    // The marker-carrying good fixtures must show up in the exemption
    // list — silently swallowed markers would hide TCB surface.
    let path = fixture_dir("mediation", "good").join("exempt_selfonly.rs");
    let a = analyze_fixture("mediation", &path);
    assert!(a.ok());
    assert!(
        a.exemptions.iter().any(|e| e.name == "sys_whoami"),
        "marker on sys_whoami not surfaced: {:?}",
        a.exemptions
    );

    let path = fixture_dir("determinism", "good").join("exempt_marker.rs");
    let a = analyze_fixture("determinism", &path);
    assert!(a.ok());
    assert_eq!(a.exemptions.len(), 1, "{:?}", a.exemptions);
}
