//! The live kernel tree must pass both rules, and the committed
//! exemption list must match what the analyzer prints, byte for byte.
//! A drifted list means someone added (or removed) TCB surface without
//! re-committing the audit artifact.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    flowcheck::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/flowcheck")
}

#[test]
fn live_tree_passes_both_rules() {
    let a = flowcheck::analyze_repo(&workspace_root()).unwrap();
    assert!(
        a.ok(),
        "live tree has flowcheck violations:\n{}",
        flowcheck::report::render_findings(&a.findings)
    );
    assert!(
        !a.exemptions.is_empty(),
        "the kernel has known self-only syscalls; an empty exemption list \
         means markers stopped being honored"
    );
}

#[test]
fn committed_exemption_list_is_exact() {
    let root = workspace_root();
    let a = flowcheck::analyze_repo(&root).unwrap();
    let rendered = flowcheck::report::render_exemptions(&a.exemptions);
    let committed = std::fs::read_to_string(root.join("flowcheck_exemptions.txt"))
        .expect("flowcheck_exemptions.txt must be committed at the repo root");
    assert_eq!(
        rendered, committed,
        "exemption list drifted; regenerate with \
         `cargo run -p flowcheck -- --exemptions-out flowcheck_exemptions.txt`"
    );
}

#[test]
fn exemption_list_is_stable_across_runs() {
    let root = workspace_root();
    let a1 = flowcheck::analyze_repo(&root).unwrap();
    let a2 = flowcheck::analyze_repo(&root).unwrap();
    assert_eq!(
        flowcheck::report::render_exemptions(&a1.exemptions),
        flowcheck::report::render_exemptions(&a2.exemptions),
    );
}
