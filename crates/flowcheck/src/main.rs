//! flowcheck CLI.
//!
//! Modes:
//! * `flowcheck` — analyze the enclosing workspace; print findings and
//!   the exemption list; exit 1 on any finding.
//! * `flowcheck --exemptions-out FILE` — same, and also write the
//!   exemption list to FILE (CI commits/diffs this).
//! * `flowcheck --rule mediation FILE…` — run one rule family over the
//!   given files (fixture mode); exit 1 on any finding.
//! * `flowcheck --rule determinism FILE…` — likewise.

use flowcheck::model::SourceFile;
use flowcheck::report;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut rule: Option<String> = None;
    let mut exemptions_out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rule" => {
                i += 1;
                rule = args.get(i).cloned();
            }
            "--exemptions-out" => {
                i += 1;
                exemptions_out = args.get(i).cloned();
            }
            "--help" | "-h" => {
                eprintln!("usage: flowcheck [--exemptions-out FILE] [--rule mediation|determinism FILE...]");
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_string()),
        }
        i += 1;
    }

    let analysis = if let Some(rule) = rule {
        let mut parsed = Vec::new();
        for path in &files {
            match std::fs::read_to_string(path) {
                Ok(text) => parsed.push(SourceFile::parse(path, &text)),
                Err(e) => {
                    eprintln!("flowcheck: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match rule.as_str() {
            "mediation" => flowcheck::analyze(&parsed, &[]),
            "determinism" => flowcheck::analyze(&[], &parsed),
            other => {
                eprintln!("flowcheck: unknown rule `{other}` (want mediation|determinism)");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let cwd = std::env::current_dir().expect("cwd");
        let Some(root) = flowcheck::find_workspace_root(&cwd) else {
            eprintln!("flowcheck: no workspace root found above {}", cwd.display());
            return ExitCode::FAILURE;
        };
        match flowcheck::analyze_repo(&root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("flowcheck: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let exemption_text = report::render_exemptions(&analysis.exemptions);
    if let Some(out) = exemptions_out {
        if let Err(e) = std::fs::write(Path::new(&out), &exemption_text) {
            eprintln!("flowcheck: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if analysis.ok() {
        print!("{exemption_text}");
        println!(
            "flowcheck: ok ({} exemption(s), 0 violations)",
            analysis.exemptions.len()
        );
        ExitCode::SUCCESS
    } else {
        eprint!("{}", report::render_findings(&analysis.findings));
        print!("{exemption_text}");
        eprintln!(
            "flowcheck: {} violation(s), {} exemption(s)",
            analysis.findings.len(),
            analysis.exemptions.len()
        );
        ExitCode::FAILURE
    }
}
