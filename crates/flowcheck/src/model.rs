//! A brace-matched outline over the token stream: `fn` items with body
//! ranges, with `#[cfg(test)] mod … { … }` blocks masked out.
//!
//! Test modules are the *observers* of the deterministic system, not part
//! of it — a test harness may iterate a scratch `HashMap` freely — so both
//! rule engines analyze only non-test code.

use crate::lex::{ExemptMarker, Lexed, Token};

/// One `fn` item: its name and the half-open token range of its body
/// (between, exclusive of, the outer braces).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
}

/// A lexed file plus its outline, as consumed by the rule engines.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as reported in diagnostics (repo-relative in repo mode).
    pub path: String,
    pub tokens: Vec<Token>,
    pub markers: Vec<ExemptMarker>,
    pub fns: Vec<FnItem>,
    /// Token ranges belonging to `#[cfg(test)]` modules; indices inside
    /// any of these ranges are skipped by the engines.
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let Lexed { tokens, markers } = crate::lex::lex(src);
        let test_ranges = find_test_ranges(&tokens);
        let fns = find_fns(&tokens, &test_ranges);
        SourceFile {
            path: path.to_string(),
            tokens,
            markers,
            fns,
            test_ranges,
        }
    }

    pub fn in_test_range(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx < b)
    }

    /// The fn item whose body contains the given token index, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        // Bodies can nest (closures don't produce FnItems, but nested fns
        // would); pick the innermost (latest-opening) match.
        self.fns
            .iter()
            .filter(|f| idx > f.body_open && idx < f.body_close)
            .max_by_key(|f| f.body_open)
    }

    /// Looks up a fn item by name (first match).
    pub fn find_fn(&self, name: &str) -> Option<&FnItem> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// True if an exempt marker sits on `line` or the line directly above
    /// (markers may annotate a statement from the preceding line).
    pub fn marker_near_line(&self, line: u32) -> Option<&ExemptMarker> {
        self.markers
            .iter()
            .find(|m| m.line == line || m.line + 1 == line)
    }

    /// True if an exempt marker sits inside the fn body's line span or in
    /// the three lines above the `fn` keyword (doc/attribute position).
    pub fn marker_for_fn(&self, f: &FnItem) -> Option<&ExemptMarker> {
        let end_line = self.tokens[f.body_close].line;
        self.markers
            .iter()
            .find(|m| m.line + 3 >= f.line && m.line <= end_line)
    }
}

/// Finds the matching `}` for the `{` at `open`.
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert_eq!(tokens[open].text, "{");
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // `# [ cfg ( test ) ] mod NAME {`
        if tokens[i].text == "#"
            && matches_seq(tokens, i + 1, &["[", "cfg", "(", "test", ")", "]", "mod"])
        {
            // Skip to the module's opening brace.
            let mut j = i + 8; // past `mod`, at NAME
            while j < tokens.len() && tokens[j].text != "{" {
                j += 1;
            }
            if j < tokens.len() {
                let close = match_brace(tokens, j);
                out.push((i, close + 1));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn find_fns(tokens: &[Token], test_ranges: &[(usize, usize)]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "fn"
            && i + 1 < tokens.len()
            && !test_ranges.iter().any(|&(a, b)| i >= a && i < b)
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // Walk to the body `{`, skipping the parameter parens and any
            // bracketed generics / where-clause punctuation. A `;` first
            // means a trait method signature or extern decl: no body.
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut angle_guard = 0usize; // crude: skip `<...>` by counting
            let mut body = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "<" => angle_guard += 1,
                    ">" => angle_guard = angle_guard.saturating_sub(1),
                    ";" if paren == 0 => break,
                    "{" if paren == 0 && angle_guard == 0 => {
                        body = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = match_brace(tokens, open);
                out.push(FnItem {
                    name,
                    line,
                    body_open: open,
                    body_close: close,
                });
                // Continue scanning *inside* the body too (nested fns),
                // so only advance past the signature.
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// True if `tokens[start..]` begins with exactly `texts`.
pub fn matches_seq(tokens: &[Token], start: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| tokens.get(start + k).map(|t| t.text.as_str()) == Some(*want))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlines_fns() {
        let f = SourceFile::parse("x.rs", "impl K { fn a(&self) { 1 } fn b() -> u8 { 2 } }");
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn masks_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { } }";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["live"]);
    }

    #[test]
    fn generic_fn_body_found() {
        let src = "fn g<T: Ord>(x: T) -> Vec<T> where T: Clone { vec![x] }";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fns.len(), 1);
        assert!(f.fns[0].body_close > f.fns[0].body_open);
    }

    #[test]
    fn finds_marker_near_fn() {
        let src = "// flowcheck: exempt(why)\nfn f() { }";
        let f = SourceFile::parse("x.rs", src);
        let item = f.find_fn("f").unwrap();
        assert!(f.marker_for_fn(item).is_some());
    }
}
