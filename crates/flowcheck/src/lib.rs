//! flowcheck: static analysis for the two invariants everything else in
//! this repo leans on.
//!
//! 1. **Mediation** — every syscall dispatch arm that reaches object
//!    state is dominated by a label check (HiStar's "all information flow
//!    is explicit" claim, OSDI '06 §3), and every deliberate exception is
//!    an enumerated, reviewable exemption.
//! 2. **Determinism** — no trace-affecting crate iterates a hash
//!    collection in unordered fashion or consults wall-clock time / OS
//!    RNG (the replay-identical-trace and snapshot-byte-stability test
//!    strategies assume this).
//!
//! See `ARCHITECTURE.md` § "Static analysis" for the rule definitions and
//! the exemption-marker grammar.

pub mod determinism;
pub mod lex;
pub mod mediation;
pub mod model;
pub mod report;

use model::SourceFile;
use report::{Exemption, Finding};
use std::path::{Path, PathBuf};

/// Crates whose code affects audit traces, snapshots, or the WAL.
pub const TRACE_AFFECTING_CRATES: &[&str] = &["kernel", "net", "exporter", "unix", "store"];

/// Result of one analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub exemptions: Vec<Exemption>,
}

impl Analysis {
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs both rule families over pre-parsed sources. Mediation needs the
/// kernel sources (dispatch + syscall bodies); determinism runs per file.
pub fn analyze(mediation_files: &[SourceFile], determinism_files: &[SourceFile]) -> Analysis {
    let mut a = Analysis::default();
    if !mediation_files.is_empty() {
        mediation::run(mediation_files, &mut a.findings, &mut a.exemptions);
    }
    determinism::run(determinism_files, &mut a.findings, &mut a.exemptions);
    a
}

/// Walks up from `start` to the workspace root (the directory whose
/// `Cargo.toml` contains `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects `.rs` files (sorted, recursive) under a directory.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Analyzes the repository rooted at `root`: mediation over the kernel
/// crate, determinism over every trace-affecting crate's `src/` tree
/// (tests and benches are observers, not trace-affecting).
pub fn analyze_repo(root: &Path) -> std::io::Result<Analysis> {
    let mut mediation_files = Vec::new();
    let mut determinism_files = Vec::new();

    for krate in TRACE_AFFECTING_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for path in rust_files(&src) {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let parsed = SourceFile::parse(&rel, &text);
            if *krate == "kernel" {
                mediation_files.push(parsed.clone());
            }
            determinism_files.push(parsed);
        }
    }
    Ok(analyze(&mediation_files, &determinism_files))
}
