//! Rule 2 — determinism: no unordered iteration or ambient entropy on
//! any trace-visible path.
//!
//! The replay, snapshot-byte-stability, and torn-WAL test strategies all
//! assume the kernel (and everything feeding it) is a pure function of
//! the boot script. Rust's `HashMap`/`HashSet` randomize iteration order
//! per instance, so *any* iteration over them is a nondeterminism leak
//! unless the results are provably order-insensitive. Wall-clock time and
//! OS RNG are forbidden outright — `sim` time and `sim` RNG are the only
//! entropy sources.
//!
//! Detection is type-tracking over the token stream:
//! * struct fields declared `HashMap`/`HashSet` are tracked per file
//!   (flagged as `self.field.<iter-verb>` / `for … in &self.field`);
//! * locals and params of hash type are tracked per enclosing fn
//!   (declared via `: HashMap<…>`, `= HashMap::new()`, `with_capacity`,
//!   or `.collect::<HashMap<…>>()`).
//!
//! Iteration verbs: `.iter()`, `.iter_mut()`, `.keys()`, `.values()`,
//! `.values_mut()`, `.into_iter()`, `.into_keys()`, `.into_values()`,
//! `.drain()`, `.retain()`, and `for … in [&[mut]] receiver`.
//!
//! Order-insensitive sinks that silence a flag:
//! * the iteration chain ends in `.count()`, `.sum()`, `.any(`, `.all(`,
//!   `.min()`, `.max()`, `.min_by_key(`, `.max_by_key(`, `.fold(` or
//!   collects into a `BTreeMap`/`BTreeSet`;
//! * the iteration initializes a `let [mut] x = …` binding that is later
//!   sorted (`x.sort…`) in the same fn;
//! * a `// flowcheck: exempt(reason)` marker on the line or the line
//!   above (these are printed in the exemption list).

use crate::model::{matches_seq, SourceFile};
use crate::report::{Exemption, Finding};
use std::collections::BTreeSet;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

const ITER_VERBS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

const FORBIDDEN_TIME: &[&str] = &["Instant", "SystemTime"];
const FORBIDDEN_RNG: &[&str] = &["thread_rng", "RandomState", "rngs"];

const INSENSITIVE_SINKS: &[&str] = &[
    "count",
    "sum",
    "any",
    "all",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "fold",
    "len",
];

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>, exemptions: &mut Vec<Exemption>) {
    for f in files {
        check_file(f, findings, exemptions);
    }
}

fn check_file(f: &SourceFile, findings: &mut Vec<Finding>, exemptions: &mut Vec<Exemption>) {
    let toks = &f.tokens;

    // Pass 0: forbidden time/RNG anywhere in non-test code.
    for (i, t) in toks.iter().enumerate() {
        if f.in_test_range(i) {
            continue;
        }
        let text = t.text.as_str();
        let forbidden = FORBIDDEN_TIME.contains(&text)
            || FORBIDDEN_RNG.contains(&text)
            || (text == "time" && i >= 3 && matches_seq(toks, i - 3, &["std", ":", ":"]))
            || (text == "rand" && toks.get(i + 1).map(|t| t.text.as_str()) == Some(":"));
        if forbidden {
            if let Some(m) = f.marker_near_line(t.line) {
                exemptions.push(Exemption {
                    rule: "determinism",
                    name: format!("{}:{}", f.path, t.line),
                    file: f.path.clone(),
                    reason: m.reason.clone(),
                });
            } else {
                findings.push(Finding {
                    rule: "determinism",
                    file: f.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{text}` is forbidden in trace-affecting crates; use sim time/RNG"
                    ),
                });
            }
        }
    }

    // Pass 1: hash-typed struct fields (file scope, used via `self.`).
    let hash_fields = collect_hash_fields(f);

    // Pass 2: per-fn locals, then flag iteration verbs.
    for item in &f.fns {
        if f.in_test_range(item.body_open) {
            continue;
        }
        let locals = collect_hash_locals(f, item.body_open, item.body_close);
        for i in item.body_open..item.body_close {
            let t = &toks[i].text;

            // Receiver position for `.verb()`: `name . verb (`.
            if ITER_VERBS.contains(&t.as_str())
                && i >= 2
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            {
                let recv = toks[i - 2].text.as_str();
                let is_hash = (hash_fields.contains(recv)
                    && i >= 4
                    && matches_seq(toks, i - 4, &["self", "."]))
                    || (locals.contains(recv)
                        && !(i >= 4 && matches_seq(toks, i - 4, &["self", "."])));
                if is_hash {
                    judge_iteration(f, item, i, recv, t, findings, exemptions);
                }
            }

            // `for PAT in [&[mut]] self.name {` / `for PAT in [&[mut]] name {`
            if t == "in" && i > item.body_open && is_for_in(toks, item.body_open, i) {
                let mut j = i + 1;
                while matches!(
                    toks.get(j).map(|t| t.text.as_str()),
                    Some("&") | Some("mut")
                ) {
                    j += 1;
                }
                let (recv, recv_idx) =
                    if matches_seq(toks, j, &["self", "."]) && toks.get(j + 2).is_some() {
                        (toks[j + 2].text.as_str(), j + 2)
                    } else if let Some(tok) = toks.get(j) {
                        (tok.text.as_str(), j)
                    } else {
                        continue;
                    };
                // Only a *direct* loop over the collection counts here; a
                // method-call chain (`for x in m.keys()`) is handled by the
                // verb pass above.
                if toks.get(recv_idx + 1).map(|t| t.text.as_str()) == Some("{") {
                    let is_field = recv_idx >= 2 && matches_seq(toks, recv_idx - 2, &["self", "."]);
                    let is_hash = (is_field && hash_fields.contains(recv))
                        || (!is_field && locals.contains(recv));
                    if is_hash {
                        judge_iteration(f, item, recv_idx, recv, "for-in", findings, exemptions);
                    }
                }
            }
        }
    }
}

/// Decides whether a flagged iteration is order-insensitive, exempt, or a
/// finding.
#[allow(clippy::too_many_arguments)]
fn judge_iteration(
    f: &SourceFile,
    item: &crate::model::FnItem,
    idx: usize,
    recv: &str,
    verb: &str,
    findings: &mut Vec<Finding>,
    exemptions: &mut Vec<Exemption>,
) {
    let toks = &f.tokens;
    let line = toks[idx].line;

    // Sink analysis: walk the rest of the statement (to `;` or the `{` of
    // a for-loop at paren depth 0).
    let mut j = idx;
    let mut depth = 0i32;
    let mut sink_insensitive = false;
    let mut collects_ordered = false;
    while j < item.body_close {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" | "{" if depth <= 0 => break,
            s if depth <= 0 => {
                if toks[j - 1].text == "." && INSENSITIVE_SINKS.contains(&s) {
                    sink_insensitive = true;
                }
                if s == "BTreeMap" || s == "BTreeSet" {
                    collects_ordered = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    if sink_insensitive || collects_ordered {
        return;
    }

    // `let [mut] x = <iteration>…;` later sorted in the same fn.
    if let Some(bound) = binding_name(toks, item.body_open, idx) {
        let mut k = j;
        while k + 2 < item.body_close {
            if toks[k].text == bound
                && toks[k + 1].text == "."
                && toks[k + 2].text.starts_with("sort")
            {
                return;
            }
            k += 1;
        }
    }

    if let Some(m) = f.marker_near_line(line) {
        exemptions.push(Exemption {
            rule: "determinism",
            name: format!("{}:{}", f.path, line),
            file: f.path.clone(),
            reason: m.reason.clone(),
        });
        return;
    }

    findings.push(Finding {
        rule: "determinism",
        file: f.path.clone(),
        line,
        message: format!(
            "unordered iteration over hash collection `{recv}` (`{verb}`); sort, use BTreeMap/BTreeSet, or mark `// flowcheck: exempt(reason)`"
        ),
    });
}

/// If the statement containing `idx` starts `let [mut] NAME =`, returns
/// NAME.
fn binding_name(toks: &[crate::lex::Token], body_open: usize, idx: usize) -> Option<String> {
    // Walk backwards to the statement start: the token after the previous
    // `;`, `{`, or `}` at any depth (good enough for let-statements).
    let mut start = idx;
    while start > body_open {
        match toks[start - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => start -= 1,
        }
    }
    if toks.get(start).map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    let mut j = start + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    toks.get(j).map(|t| t.text.clone())
}

/// True if token `i` (an `in`) belongs to a `for … in` header: scan back
/// for the matching `for` with no intervening `{`/`;`.
fn is_for_in(toks: &[crate::lex::Token], body_open: usize, i: usize) -> bool {
    let mut j = i;
    let mut depth = 0i32;
    while j > body_open {
        j -= 1;
        match toks[j].text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => depth -= 1,
            "for" if depth <= 0 => return true,
            "{" | ";" | "}" if depth <= 0 => return false,
            _ => {}
        }
    }
    false
}

/// Struct fields of hash type: `name : HashMap <` / `name : HashSet <`
/// inside any `struct … { … }` item.
fn collect_hash_fields(f: &SourceFile) -> BTreeSet<String> {
    let toks = &f.tokens;
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "struct" && !f.in_test_range(i) {
            let mut j = i + 1;
            while j < toks.len()
                && toks[j].text != "{"
                && toks[j].text != ";"
                && toks[j].text != "("
            {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                let close = crate::model::match_brace(toks, j);
                let mut k = j + 1;
                while k + 2 < close {
                    if toks[k + 1].text == ":" && HASH_TYPES.contains(&toks[k + 2].text.as_str()) {
                        out.insert(toks[k].text.clone());
                    }
                    k += 1;
                }
                i = close;
            }
        }
        i += 1;
    }
    out
}

/// Hash-typed locals and params within a fn body (plus the signature just
/// before it — params share the binding namespace).
fn collect_hash_locals(f: &SourceFile, open: usize, close: usize) -> BTreeSet<String> {
    let toks = &f.tokens;
    let mut out = BTreeSet::new();
    for i in open..close {
        let t = toks[i].text.as_str();
        if !HASH_TYPES.contains(&t) {
            continue;
        }
        // `let [mut] NAME : HashMap` — walk back over the type annotation.
        if i >= 2 && toks[i - 1].text == ":" {
            let name_idx = i - 2;
            out.insert(toks[name_idx].text.clone());
            continue;
        }
        // `let [mut] NAME = HashMap :: new ( )` / `with_capacity` /
        // `from ( … )`, or `… = ident . collect :: < HashMap … > ( )`.
        let mut j = i;
        while j > open {
            j -= 1;
            match toks[j].text.as_str() {
                "=" => {
                    // name is just before `=` (skipping a possible type
                    // annotation `: T` — handled above anyway).
                    if j >= 1 {
                        out.insert(toks[j - 1].text.clone());
                    }
                    break;
                }
                ";" | "{" | "}" => break,
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn run_one(src: &str) -> (Vec<Finding>, Vec<Exemption>) {
        let f = SourceFile::parse("t.rs", src);
        let mut fi = Vec::new();
        let mut ex = Vec::new();
        check_file(&f, &mut fi, &mut ex);
        (fi, ex)
    }

    #[test]
    fn flags_field_iter() {
        let src = "struct K { m: HashMap<u64, u8> }\nimpl K { fn f(&self) { for (k, v) in self.m.iter() { use_it(k, v); } } }";
        let (fi, _) = run_one(src);
        assert_eq!(fi.len(), 1, "{fi:?}");
    }

    #[test]
    fn count_is_order_insensitive() {
        let src = "struct K { m: HashMap<u64, u8> }\nimpl K { fn f(&self) -> usize { self.m.values().count() } }";
        let (fi, _) = run_one(src);
        assert!(fi.is_empty(), "{fi:?}");
    }

    #[test]
    fn sorted_collect_passes() {
        let src = "struct K { m: HashMap<u64, u8> }\nimpl K { fn f(&self) -> Vec<u64> { let mut v: Vec<u64> = self.m.keys().copied().collect(); v.sort_unstable(); v } }";
        let (fi, _) = run_one(src);
        assert!(fi.is_empty(), "{fi:?}");
    }

    #[test]
    fn marker_exempts() {
        let src = "struct K { m: HashMap<u64, u8> }\nimpl K { fn f(&self) {\n// flowcheck: exempt(caller sorts)\nfor k in self.m.keys() { go(k); } } }";
        let (fi, ex) = run_one(src);
        assert!(fi.is_empty(), "{fi:?}");
        assert_eq!(ex.len(), 1);
    }

    #[test]
    fn keyed_access_fine() {
        let src = "struct K { m: HashMap<u64, u8> }\nimpl K { fn f(&self) -> Option<&u8> { self.m.get(&1) } }";
        let (fi, _) = run_one(src);
        assert!(fi.is_empty(), "{fi:?}");
    }

    #[test]
    fn instant_forbidden() {
        let src = "fn f() { let t = Instant::now(); }";
        let (fi, _) = run_one(src);
        assert_eq!(fi.len(), 1);
    }

    #[test]
    fn local_hashmap_for_loop_flagged() {
        let src =
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for (a, b) in &m { go(a, b); } }";
        let (fi, _) = run_one(src);
        assert_eq!(fi.len(), 1, "{fi:?}");
    }

    #[test]
    fn btree_ignored() {
        let src = "struct K { m: BTreeMap<u64, u8> }\nimpl K { fn f(&self) { for k in self.m.keys() { go(k); } } }";
        let (fi, _) = run_one(src);
        assert!(fi.is_empty(), "{fi:?}");
    }

    #[test]
    fn test_mod_skipped() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let mut m = HashMap::new(); for k in m.keys() { go(k); } } }";
        let (fi, _) = run_one(src);
        assert!(fi.is_empty(), "{fi:?}");
    }
}
