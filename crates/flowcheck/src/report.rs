//! Findings (violations) and the printed exemption list.
//!
//! The exemption list is the auditable TCB surface: every syscall or
//! iteration site that bypasses a rule, with the reviewer-facing reason
//! from its `// flowcheck: exempt(…)` marker. Output is sorted so the
//! committed list is byte-stable across runs.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemption {
    pub rule: &'static str,
    /// Syscall name (mediation) or `file:line` (determinism).
    pub name: String,
    pub file: String,
    pub reason: String,
}

/// Renders findings as `file:line: [rule] message`, sorted.
pub fn render_findings(findings: &[Finding]) -> String {
    let mut rows: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    rows.sort();
    rows.dedup();
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    out
}

/// Renders the exemption list, sorted and byte-stable.
pub fn render_exemptions(exemptions: &[Exemption]) -> String {
    let mut rows: Vec<String> = exemptions
        .iter()
        .map(|e| format!("{} {} — {}", e.rule, e.name, e.reason))
        .collect();
    rows.sort();
    rows.dedup();
    let mut out = String::new();
    let _ = writeln!(out, "# flowcheck exemption list (auditable TCB surface)");
    let _ = writeln!(
        out,
        "# One line per `// flowcheck: exempt(...)` marker the analyzer honored."
    );
    let _ = writeln!(
        out,
        "# Regenerate with: cargo run -p flowcheck -- --exemptions-out flowcheck_exemptions.txt"
    );
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    out
}
