//! Rule 1 — mediation: every syscall reaching object state is dominated
//! by a label check.
//!
//! The engine walks `dispatch_inner` (the single choke point every
//! `Kernel::dispatch` / batched-ABI call funnels through), collects the
//! `self.sys_*` targets of its match arms plus the batched handle ops
//! (`handle_open` / `handle_close` from `dispatch_batch_collect`), and
//! analyzes each target body as a token stream:
//!
//! * **Checks** are calls whose job is a label decision:
//!   `check_observe`, `check_modify`, `check_entry`, `check_spawn`,
//!   `check_set_label`, `check_set_clearance`, `check_record_observe`,
//!   `check_record_modify`, `create_object` (which internally performs
//!   `check_modify` + `can_allocate`), `can_allocate`, and `.owns(…)`
//!   (category-ownership tests).
//! * **Heap accesses** reach the object table or ABI-edge state:
//!   `self.objects`, `self.handles`, `self.completions`, `self.watchers`,
//!   `self.remote_bindings`, `self.remote_index`, and the typed accessors
//!   `obj`/`obj_mut`/`typed`/`container`/`thread`/`thread_mut`/`dealloc`.
//!   Accessors keyed by the calling thread itself (`tid` literal) are
//!   *self accesses*: a thread may always touch its own state (§3 of the
//!   paper: observing yourself leaks nothing new).
//! * **Record accesses** reach the single-level store: `self.store` and
//!   `self.persist_record`. Record labels ride *inside* the record, so
//!   lexical check-before-access cannot hold (the record must be read to
//!   learn its label); for the record class the rule instead requires a
//!   `check_record_*` call somewhere in the body before the payload can
//!   legally flow out.
//!
//! Verdicts per entry point: a body with a flagged access needs a check
//! lexically before the first heap access (record class: anywhere), or a
//! `// flowcheck: exempt(reason)` marker on the fn. A body with *no*
//! access and *no* check is check-free and must carry a marker too —
//! that's the auditable TCB list. Delegation (`self.sys_x` calling
//! `self.sys_y`) inherits the delegate's verdict. The engine also
//! verifies completeness (every name in `SYSCALL_NAMES` has a
//! `self.sys_<name>` call in `dispatch_inner`; no inline state access in
//! the dispatcher itself) and sanity-checks the trusted check helpers
//! (each `check_*` must contain an actual label comparison: `leq`,
//! `leq_high_rhs`, `leq_high_both`, or `count_label_check`).

use crate::model::{matches_seq, SourceFile};
use crate::report::{Exemption, Finding};
use std::collections::{BTreeMap, BTreeSet};

const CHECK_CALLS: &[&str] = &[
    "check_observe",
    "check_modify",
    "check_entry",
    "check_spawn",
    "check_set_label",
    "check_set_clearance",
    "check_record_observe",
    "check_record_modify",
    "create_object",
    "can_allocate",
];

/// `self.<field>` uses that count as heap access. Keyed self-probes
/// (`self.completions.get_mut(&tid)`) are self accesses.
const STATE_FIELDS: &[&str] = &[
    "objects",
    "handles",
    "completions",
    "watchers",
    "remote_bindings",
    "remote_index",
];

/// `self.<accessor>(arg, …)`: heap access unless the first argument is
/// the literal `tid` (the calling thread's own state).
const ACCESSORS: &[&str] = &[
    "obj",
    "obj_mut",
    "typed",
    "container",
    "thread",
    "thread_mut",
    "thread_label",
    "thread_clearance",
    "dealloc",
];

/// Trusted helpers whose own bodies must contain a real label comparison.
const CHECK_HELPERS: &[&str] = &[
    "check_observe",
    "check_modify",
    "check_entry",
    "check_record_observe",
    "check_record_modify",
];

const LABEL_COMPARES: &[&str] = &[
    "leq",
    "leq_high_rhs",
    "leq_high_both",
    "count_label_check",
    "can_allocate",
];

#[derive(Debug)]
struct BodyScan {
    first_check: Option<usize>,
    first_heap: Option<(usize, u32, String)>,
    has_record: Option<(u32, String)>,
    has_record_check: bool,
    delegates: Vec<String>,
}

/// Analysis entry: runs the mediation rule over the given files and
/// appends findings/exemptions.
pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>, exemptions: &mut Vec<Exemption>) {
    // Locate dispatch_inner and the batched-path handle ops.
    let mut entry_points: BTreeSet<String> = BTreeSet::new();
    let mut dispatch_file: Option<(&SourceFile, usize, usize)> = None;

    for f in files {
        if let Some(item) = f.find_fn("dispatch_inner") {
            dispatch_file = Some((f, item.body_open, item.body_close));
        }
    }

    let Some((df, dopen, dclose)) = dispatch_file else {
        findings.push(Finding {
            rule: "mediation",
            file: files.first().map(|f| f.path.clone()).unwrap_or_default(),
            line: 0,
            message: "no `dispatch_inner` found: the syscall choke point is missing".into(),
        });
        return;
    };

    // Collect `self . sys_* (` targets from dispatch_inner, and flag any
    // inline state access in the dispatcher itself (arms must delegate).
    for i in dopen..dclose {
        let t = &df.tokens[i];
        if t.text.starts_with("sys_")
            && i >= 2
            && matches_seq(&df.tokens, i - 2, &["self", "."])
            && df.tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            entry_points.insert(t.text.clone());
        }
    }
    if let Some((idx, line, what)) = first_state_access(df, dopen, dclose) {
        let _ = idx;
        findings.push(Finding {
            rule: "mediation",
            file: df.path.clone(),
            line,
            message: format!(
                "dispatch arm accesses `{what}` inline; arms must delegate to a sys_* method"
            ),
        });
    }

    // Batched ABI path: handle ops invoked from dispatch_batch_collect
    // (or any dispatch_* fn) are entry points too.
    for f in files {
        for item in &f.fns {
            if !item.name.starts_with("dispatch") {
                continue;
            }
            for i in item.body_open..item.body_close {
                let t = &f.tokens[i];
                if (t.text == "handle_open"
                    || t.text == "handle_close"
                    || t.text == "handle_open_reuse")
                    && i >= 2
                    && matches_seq(&f.tokens, i - 2, &["self", "."])
                    && f.tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                {
                    entry_points.insert(t.text.clone());
                }
            }
        }
    }

    // Completeness: every SYSCALL_NAMES entry must have a sys_ call.
    if let Some(names) = syscall_names(df) {
        for name in names {
            let want = format!("sys_{name}");
            if !entry_points.contains(&want) {
                findings.push(Finding {
                    rule: "mediation",
                    file: df.path.clone(),
                    line: 0,
                    message: format!(
                        "syscall `{name}` is in SYSCALL_NAMES but dispatch_inner never calls `{want}`"
                    ),
                });
            }
        }
    }

    // Analyze every entry point (plus transitive delegates).
    let mut verdicts: BTreeMap<String, ()> = BTreeMap::new();
    let mut queue: Vec<String> = entry_points.iter().cloned().collect();
    while let Some(name) = queue.pop() {
        if verdicts.contains_key(&name) {
            continue;
        }
        verdicts.insert(name.clone(), ());
        let Some((f, item)) = find_method(files, &name) else {
            findings.push(Finding {
                rule: "mediation",
                file: df.path.clone(),
                line: 0,
                message: format!(
                    "dispatch target `{name}` has no definition in the analyzed files"
                ),
            });
            continue;
        };
        let scan = scan_body(f, item.body_open, item.body_close);
        for d in &scan.delegates {
            queue.push(d.clone());
        }
        let marker = f.marker_for_fn(item);

        // Heap class: check must lexically dominate the first access.
        if let Some((aidx, aline, what)) = &scan.first_heap {
            let dominated = scan.first_check.map(|c| c < *aidx).unwrap_or(false);
            if !dominated {
                match marker {
                    Some(m) => exemptions.push(Exemption {
                        rule: "mediation",
                        name: name.clone(),
                        file: f.path.clone(),
                        reason: m.reason.clone(),
                    }),
                    None => findings.push(Finding {
                        rule: "mediation",
                        file: f.path.clone(),
                        line: *aline,
                        message: format!(
                            "`{name}` reaches object state (`{what}`) with no label check before it"
                        ),
                    }),
                }
                continue;
            }
        }

        // Record class: a record check must exist somewhere in the body.
        if let Some((rline, what)) = &scan.has_record {
            if !scan.has_record_check {
                match marker {
                    Some(m) => exemptions.push(Exemption {
                        rule: "mediation",
                        name: name.clone(),
                        file: f.path.clone(),
                        reason: m.reason.clone(),
                    }),
                    None => findings.push(Finding {
                        rule: "mediation",
                        file: f.path.clone(),
                        line: *rline,
                        message: format!(
                            "`{name}` reaches store records (`{what}`) without a check_record_* call"
                        ),
                    }),
                }
                continue;
            }
        }

        // Check-free and access-free bodies: self-only / pure-metadata
        // syscalls. They must be marked, or delegate to something checked.
        let has_access = scan.first_heap.is_some() || scan.has_record.is_some();
        let has_check = scan.first_check.is_some() || scan.has_record_check;
        if !has_access && !has_check && scan.delegates.is_empty() {
            match marker {
                Some(m) => exemptions.push(Exemption {
                    rule: "mediation",
                    name: name.clone(),
                    file: f.path.clone(),
                    reason: m.reason.clone(),
                }),
                None => findings.push(Finding {
                    rule: "mediation",
                    file: f.path.clone(),
                    line: item.line,
                    message: format!(
                        "`{name}` is check-free; self-only/pure-metadata syscalls need `// flowcheck: exempt(reason)`"
                    ),
                }),
            }
        }
    }

    // Sanity-check the trusted helpers: a "check" that compares nothing
    // is a hole in the TCB.
    for helper in CHECK_HELPERS {
        if let Some((f, item)) = find_method(files, helper) {
            let mut compares = false;
            for i in item.body_open..item.body_close {
                let t = &f.tokens[i].text;
                // A direct label comparison, or delegation to another
                // trusted helper (check_entry starts with check_observe).
                if LABEL_COMPARES.contains(&t.as_str())
                    || (CHECK_HELPERS.contains(&t.as_str()) && t != helper)
                {
                    compares = true;
                    break;
                }
            }
            if !compares {
                findings.push(Finding {
                    rule: "mediation",
                    file: f.path.clone(),
                    line: item.line,
                    message: format!(
                        "trusted helper `{helper}` contains no label comparison (leq/leq_high_rhs/can_allocate)"
                    ),
                });
            }
        }
    }
}

/// Scans a fn body for the first check, first heap access, record access,
/// and sys_*/handle_* delegation calls.
fn scan_body(f: &SourceFile, open: usize, close: usize) -> BodyScan {
    let mut scan = BodyScan {
        first_check: None,
        first_heap: None,
        has_record: None,
        has_record_check: false,
        delegates: Vec::new(),
    };
    let toks = &f.tokens;
    for i in open..close {
        let t = &toks[i].text;

        // Checks: `self . check_x (` / `create_object (` / `. owns (`.
        let is_check_call = CHECK_CALLS.contains(&t.as_str())
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");
        let is_owns = t == "owns"
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");
        if is_check_call || is_owns {
            if scan.first_check.is_none() {
                scan.first_check = Some(i);
            }
            if t.starts_with("check_record") || t == "can_allocate" {
                scan.has_record_check = true;
            }
            continue;
        }

        // Everything below keys off `self . X`.
        if !(i >= 2 && matches_seq(toks, i - 2, &["self", "."])) {
            continue;
        }

        if t == "store" || (t == "persist_record" && next_is(toks, i, "(")) {
            if scan.has_record.is_none() {
                scan.has_record = Some((toks[i].line, format!("self.{t}")));
            }
            continue;
        }

        if STATE_FIELDS.contains(&t.as_str()) {
            if !is_self_keyed_field_use(toks, i) && scan.first_heap.is_none() {
                scan.first_heap = Some((i, toks[i].line, format!("self.{t}")));
            }
            continue;
        }

        if ACCESSORS.contains(&t.as_str()) && next_is(toks, i, "(") {
            // `self.obj(tid)` / `self.thread_mut(tid)` are self accesses.
            let first_arg = toks.get(i + 2).map(|t| t.text.as_str());
            let self_keyed = first_arg == Some("tid");
            if !self_keyed && scan.first_heap.is_none() {
                scan.first_heap = Some((i, toks[i].line, format!("self.{t}()")));
            }
            continue;
        }

        if (t.starts_with("sys_") || t.starts_with("handle_")) && next_is(toks, i, "(") {
            scan.delegates.push(t.clone());
        }
    }
    scan
}

/// `self.<field>.method(&tid…)` — keyed by the calling thread — is a
/// self access; everything else reaching a state field is a heap access.
fn is_self_keyed_field_use(toks: &[crate::lex::Token], i: usize) -> bool {
    if next_is(toks, i, ".") && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(") {
        let mut j = i + 4;
        if toks.get(j).map(|t| t.text.as_str()) == Some("&") {
            j += 1;
        }
        if toks.get(j).map(|t| t.text.as_str()) == Some("tid") {
            return true;
        }
    }
    false
}

fn next_is(toks: &[crate::lex::Token], i: usize, text: &str) -> bool {
    toks.get(i + 1).map(|t| t.text.as_str()) == Some(text)
}

/// First inline state access in a token range that is *not* part of a
/// `self.sys_*` / `self.handle_*` call chain (dispatcher hygiene).
fn first_state_access(f: &SourceFile, open: usize, close: usize) -> Option<(usize, u32, String)> {
    let toks = &f.tokens;
    for i in open..close {
        let t = &toks[i].text;
        if !(i >= 2 && matches_seq(toks, i - 2, &["self", "."])) {
            continue;
        }
        if STATE_FIELDS.contains(&t.as_str()) || t == "store" {
            return Some((i, toks[i].line, format!("self.{t}")));
        }
        if ACCESSORS.contains(&t.as_str()) && next_is(toks, i, "(") {
            let first_arg = toks.get(i + 2).map(|t| t.text.as_str());
            if first_arg != Some("tid") {
                return Some((i, toks[i].line, format!("self.{t}()")));
            }
        }
    }
    None
}

/// Locates a method definition by name across the analyzed files.
fn find_method<'a>(
    files: &'a [SourceFile],
    name: &str,
) -> Option<(&'a SourceFile, &'a crate::model::FnItem)> {
    for f in files {
        if let Some(item) = f.find_fn(name) {
            return Some((f, item));
        }
    }
    None
}

/// Parses `pub const SYSCALL_NAMES: … = [ "a", "b", … ];` if present.
/// String literals are stripped by the lexer, so read them straight from
/// the source line span instead — the model keeps tokens only. To keep
/// the lexer simple, SYSCALL_NAMES completeness instead uses the enum:
/// `pub enum Syscall { VariantA { … }, VariantB, … }` and maps each
/// variant to its snake_case syscall name.
fn syscall_names(f: &SourceFile) -> Option<Vec<String>> {
    let toks = &f.tokens;
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].text == "enum" && toks[i + 1].text == "Syscall" {
            // find `{`
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            if j >= toks.len() {
                return None;
            }
            let close = crate::model::match_brace(toks, j);
            let mut names = Vec::new();
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut expect_variant = true;
            while k < close {
                match toks[k].text.as_str() {
                    "{" | "(" => depth += 1,
                    "}" | ")" => depth -= 1,
                    "," if depth == 0 => expect_variant = true,
                    "#" | "[" | "]" => {}
                    s if depth == 0
                        && expect_variant
                        && s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                    {
                        names.push(to_snake(s));
                        expect_variant = false;
                    }
                    _ => {}
                }
                k += 1;
            }
            return Some(names);
        }
        i += 1;
    }
    None
}

fn to_snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}
