//! A minimal Rust tokenizer: just enough structure for flowcheck's two
//! rule engines.
//!
//! The analyzer deliberately avoids a full parser (and any external
//! parsing crate): both rules are expressible over a token stream plus a
//! brace-matched outline of `fn` items, and a hand-rolled lexer keeps the
//! tool dependency-free so it builds in hermetic CI environments.
//!
//! Comments and string/char literals are stripped (tokens never come from
//! inside them), but `// flowcheck: exempt(<reason>)` markers are captured
//! with their line numbers so the rule engines can match exemptions to
//! the item or statement they annotate.

/// One lexical token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: u32,
}

/// An `// flowcheck: exempt(<reason>)` marker found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemptMarker {
    pub line: u32,
    pub reason: String,
}

/// The lexed form of one source file.
#[derive(Debug, Clone)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub markers: Vec<ExemptMarker>,
}

/// Tokenizes Rust source. Identifiers (including keywords) and integer
/// literals become single tokens; every punctuation character is its own
/// token (`::` is two `:` tokens). Lifetimes lex as `'` followed by the
/// identifier, which no rule pattern matches, so they are inert.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut markers = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                if let Some(m) = parse_marker(comment, line) {
                    markers.push(m);
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                // r"..." or r#"..."# (any number of #).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                loop {
                    if j >= bytes.len() {
                        break;
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                        continue;
                    }
                    if bytes[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'` + ident not
                // followed by a closing quote; a char literal always closes.
                if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    // Escaped char literal: skip to closing quote.
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    i += 3; // simple char literal 'x'
                } else {
                    // Lifetime: emit the quote, let the ident lex normally.
                    push(&mut tokens, "'", line);
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push(&mut tokens, &src[start..i], line);
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a float's trailing `.` from eating a method call
                    // like `1.max(2)`.
                    if bytes[i] == b'.' && i + 1 < bytes.len() && !bytes[i + 1].is_ascii_digit() {
                        break;
                    }
                    i += 1;
                }
                push(&mut tokens, &src[start..i], line);
            }
            _ => {
                push(&mut tokens, &src[i..i + 1], line);
                i += 1;
            }
        }
    }

    Lexed { tokens, markers }
}

fn push(tokens: &mut Vec<Token>, text: &str, line: u32) {
    tokens.push(Token {
        text: text.to_string(),
        line,
    });
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"` or `r#...#"`, but not an identifier like `rng` or `r#keyword`.
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    // `r#ident` (raw identifier) has an alphabetic after exactly one `#`;
    // a raw string always has a quote after the hashes.
    j < bytes.len() && bytes[j] == b'"'
}

/// Parses `// flowcheck: exempt(<reason>)` out of a line comment.
fn parse_marker(comment: &str, line: u32) -> Option<ExemptMarker> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("flowcheck:")?.trim();
    let rest = rest.strip_prefix("exempt(")?;
    let reason = rest.strip_suffix(')')?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(ExemptMarker {
        line,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_and_punct() {
        let l = lex("self.objects.get(&id)");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["self", ".", "objects", ".", "get", "(", "&", "id", ")"]
        );
    }

    #[test]
    fn strips_comments_and_strings() {
        let l = lex("let x = \"HashMap.iter()\"; // HashMap\n/* iter */ y");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", ";", "y"]);
        assert!(l.markers.is_empty());
    }

    #[test]
    fn captures_exempt_markers() {
        let l = lex("a\n// flowcheck: exempt(self-only metadata)\nb");
        assert_eq!(l.markers.len(), 1);
        assert_eq!(l.markers[0].line, 2);
        assert_eq!(l.markers[0].reason, "self-only metadata");
    }

    #[test]
    fn tracks_lines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = lex("r#\"HashMap\"# fn f<'a>(x: &'a str) {}");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"HashMap"));
        assert!(texts.contains(&"fn"));
    }
}
