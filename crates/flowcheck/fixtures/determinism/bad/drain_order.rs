//! Must fail: drain order of a HashMap is hash order.
struct Pool {
    free: HashMap<u64, u8>,
}

impl Pool {
    fn flush(&mut self, out: &mut Vec<u64>) {
        for (id, _) in self.free.drain() {
            out.push(id);
        }
    }
}
