//! Must fail: `for` directly over a HashSet.
struct Sched {
    dirty: HashSet<u64>,
}

impl Sched {
    fn drain(&mut self, out: &mut Vec<u64>) {
        for id in &self.dirty {
            out.push(*id);
        }
    }
}
