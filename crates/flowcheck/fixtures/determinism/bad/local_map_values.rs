//! Must fail: a local HashMap's values feed an order-sensitive sink.
fn summarize(rows: &[(u64, u64)]) -> Vec<u64> {
    let mut acc = HashMap::new();
    for (k, v) in rows {
        *acc.entry(*k).or_insert(0u64) += v;
    }
    let mut out = Vec::new();
    for total in acc.values() {
        out.push(*total);
    }
    out
}
