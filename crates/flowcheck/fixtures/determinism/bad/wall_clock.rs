//! Must fail: wall-clock time in a trace-affecting crate.
fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
