//! Must fail: OS randomness in a trace-affecting crate.
use rand::Rng;

fn pick(n: u64) -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..n)
}
