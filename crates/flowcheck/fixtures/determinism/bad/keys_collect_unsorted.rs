//! Must fail: keys collected into a Vec that is never sorted.
struct Table {
    slots: HashMap<u64, u8>,
}

impl Table {
    fn ids(&self) -> Vec<u64> {
        let ids: Vec<u64> = self.slots.keys().copied().collect();
        ids
    }
}
