//! Must fail: iterating a hash-typed struct field leaks hash order.
struct Kernel {
    watchers: HashMap<u64, Vec<u64>>,
}

impl Kernel {
    fn notify_all(&mut self, out: &mut Vec<u64>) {
        for (obj, threads) in self.watchers.iter() {
            out.push(*obj);
            out.extend(threads.iter().copied());
        }
    }
}
