//! Must pass: hash iteration whose result is sorted before use.
struct Kernel {
    objects: HashMap<u64, u8>,
}

impl Kernel {
    fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.objects.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}
