//! Must pass: a deliberate unordered iteration carrying its marker.
struct Kernel {
    objects: HashMap<u64, u8>,
}

impl Kernel {
    fn objects(&self) -> impl Iterator<Item = (&u64, &u8)> {
        // flowcheck: exempt(every consumer sorts by id before order is visible)
        self.objects.iter()
    }
}
