//! Must pass: counts, sums and existence tests don't observe order.
struct Env {
    processes: HashMap<u64, u8>,
}

impl Env {
    fn alive(&self) -> usize {
        self.processes.values().count()
    }

    fn any_root(&self) -> bool {
        self.processes.values().any(|p| *p == 0)
    }

    fn total(&self) -> u64 {
        self.processes.keys().sum()
    }
}
