//! Must pass: keyed probes of a HashMap never observe hash order.
struct Table {
    slots: HashMap<u64, u8>,
}

impl Table {
    fn get(&self, id: u64) -> Option<u8> {
        self.slots.get(&id).copied()
    }

    fn put(&mut self, id: u64, v: u8) {
        self.slots.insert(id, v);
    }
}
