//! Must pass: BTreeMap iteration is ordered by key.
struct Kernel {
    bindings: BTreeMap<u64, (u64, u64)>,
}

impl Kernel {
    fn dump(&self, out: &mut Vec<u64>) {
        for (cat, _name) in self.bindings.iter() {
            out.push(*cat);
        }
    }
}
