//! Must pass: the canonical shape — label check dominates the access.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_read(tid, entry)
    }

    fn sys_read(&mut self, tid: ObjectId, entry: ContainerEntry) -> R {
        let (tl, _) = self.calling_thread(tid)?;
        self.check_entry(&tl, entry)?;
        self.check_observe(&tl, entry.object)?;
        self.obj(entry.object).map(|o| o.size())
    }

    fn check_entry(&mut self, tl: &Label, entry: ContainerEntry) -> Result<(), E> {
        self.check_observe(tl, entry.container)
    }

    fn check_observe(&mut self, tl: &Label, object: ObjectId) -> Result<(), E> {
        let olabel = self.label_of(object)?;
        if olabel.leq_high_rhs(tl) {
            Ok(())
        } else {
            Err(E::LabelDenied)
        }
    }
}
