//! Must pass: ABI-edge state keyed by the calling thread is self access;
//! the ownership test (`owns`) mediates the category bind.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        match call {
            Syscall::TakeAlert => self.sys_take(tid),
            Syscall::Bind { category, name } => self.sys_bind(tid, category, name),
        }
    }

    // flowcheck: exempt(pops the caller's own completion queue)
    fn sys_take(&mut self, tid: ObjectId) -> R {
        let queue = self.completions.get_mut(&tid);
        Ok(queue.and_then(|q| q.pop_front()))
    }

    fn sys_bind(&mut self, tid: ObjectId, category: Category, name: Name) -> R {
        let (tl, _) = self.calling_thread(tid)?;
        if !tl.owns(category) {
            return Err(E::NotOwner);
        }
        self.remote_bindings.insert(category, name);
        Ok(())
    }
}
