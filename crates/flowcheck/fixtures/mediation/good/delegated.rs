//! Must pass: an alias syscall that delegates to a mediated one.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        match call {
            Syscall::Read { entry } => self.sys_read(tid, entry),
            Syscall::ReadAlias { entry } => self.sys_read_alias(tid, entry),
        }
    }

    fn sys_read_alias(&mut self, tid: ObjectId, entry: ContainerEntry) -> R {
        self.sys_read(tid, entry)
    }

    fn sys_read(&mut self, tid: ObjectId, entry: ContainerEntry) -> R {
        let (tl, _) = self.calling_thread(tid)?;
        self.check_observe(&tl, entry.object)?;
        self.obj(entry.object).map(|o| o.size())
    }
}
