//! Must pass: object creation mediated by create_object (which performs
//! check_modify + quota charging internally).
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_segment_create(tid, container, label)
    }

    fn sys_segment_create(&mut self, tid: ObjectId, container: ObjectId, label: Label) -> R {
        let (tl, tc) = self.calling_thread(tid)?;
        let id = self.create_object(&tl, &tc, container, label, KObjectBody::segment())?;
        Ok(id)
    }
}
