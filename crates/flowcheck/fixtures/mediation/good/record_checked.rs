//! Must pass: record syscalls fetch the record first (the label rides
//! inside it), then check before the payload flows out.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_persist_read(tid, key)
    }

    fn sys_persist_read(&mut self, tid: ObjectId, key: u64) -> R {
        let (tl, _) = self.calling_thread(tid)?;
        let bytes = self.persist_record(key)?.ok_or(E::NoSuchRecord(key))?;
        let (rlabel, payload) = Self::persist_unframe(key, &bytes)?;
        self.check_record_observe(&tl, &rlabel)?;
        Ok(payload.to_vec())
    }
}
