//! Must pass: a check-free self-only syscall carrying its marker.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_whoami(tid)
    }

    // flowcheck: exempt(returns the caller's own id; self-only metadata)
    fn sys_whoami(&mut self, tid: ObjectId) -> R {
        Ok(tid)
    }
}
