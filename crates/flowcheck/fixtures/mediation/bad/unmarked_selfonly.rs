//! Must fail: a check-free self-only syscall without an exempt marker.
//! Check-free is sometimes legitimate, but it must be *declared* so the
//! exemption list stays the complete audit surface.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_whoami(tid)
    }

    fn sys_whoami(&mut self, tid: ObjectId) -> R {
        Ok(tid)
    }
}
