//! Must fail: object-table access with no label check anywhere.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_steal(tid, entry)
    }

    fn sys_steal(&mut self, tid: ObjectId, entry: ContainerEntry) -> R {
        let (_, body) = self.obj_mut(entry.object)?;
        body.owner = tid;
        Ok(())
    }
}
