//! Must fail: returns a persist record's payload without any
//! check_record_* call.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_persist_peek(tid, key)
    }

    fn sys_persist_peek(&mut self, tid: ObjectId, key: u64) -> R {
        self.calling_thread(tid)?;
        let bytes = self.persist_record(key)?.ok_or(E::NoSuchRecord(key))?;
        let (_, payload) = Self::persist_unframe(key, &bytes)?;
        Ok(payload.to_vec())
    }
}
