//! Must fail: the syscall reads the object table before its label check.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_peek(tid, entry)
    }

    fn sys_peek(&mut self, tid: ObjectId, entry: ContainerEntry) -> R {
        let (tl, _) = self.calling_thread(tid)?;
        let data = self.obj(entry.object)?.payload.clone();
        self.check_observe(&tl, entry.object)?;
        Ok(data)
    }
}
