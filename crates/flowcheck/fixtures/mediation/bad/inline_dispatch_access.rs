//! Must fail: a dispatch arm pokes kernel state inline instead of
//! delegating to a sys_* method.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        match call {
            Syscall::Fast { id } => Ok(self.objects.get(&id).unwrap().size()),
            other => self.sys_slow(tid, other),
        }
    }

    fn sys_slow(&mut self, tid: ObjectId, call: Syscall) -> R {
        let tl = self.calling_thread(tid)?;
        self.check_observe(&tl, call.object())?;
        self.obj(call.object()).map(|o| o.size())
    }
}
