//! Must fail: `Quietly` is declared as a syscall but dispatch_inner
//! never routes it to a sys_* method (completeness violation).
pub enum Syscall {
    Loudly { entry: ContainerEntry },
    Quietly { entry: ContainerEntry },
}

impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        match call {
            Syscall::Loudly { entry } => self.sys_loudly(tid, entry),
            Syscall::Quietly { .. } => Ok(R::Unit),
        }
    }

    fn sys_loudly(&mut self, tid: ObjectId, entry: ContainerEntry) -> R {
        let (tl, _) = self.calling_thread(tid)?;
        self.check_observe(&tl, entry.object)?;
        self.obj(entry.object).map(|o| o.size())
    }
}
