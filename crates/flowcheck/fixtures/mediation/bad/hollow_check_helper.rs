//! Must fail: the trusted helper `check_observe` compares no labels —
//! a mediation rule that trusts it would be circular.
impl Kernel {
    fn dispatch_inner(&mut self, tid: ObjectId, call: Syscall) -> R {
        self.sys_read(tid, entry)
    }

    fn sys_read(&mut self, tid: ObjectId, entry: ContainerEntry) -> R {
        let (tl, _) = self.calling_thread(tid)?;
        self.check_observe(&tl, entry.object)?;
        self.obj(entry.object).map(|o| o.size())
    }

    fn check_observe(&mut self, _tl: &Label, _object: ObjectId) -> Result<(), E> {
        Ok(())
    }
}
