//! Deterministic simulation substrate for the HiStar reproduction.
//!
//! The paper's evaluation ran on real hardware: a 2.4 GHz Athlon64, a
//! 7,200 RPM IDE disk, and a 100 Mbps Ethernet.  This crate provides
//! deterministic stand-ins for that hardware so that the benchmark harness
//! can reproduce the *shape* of the paper's results without the actual
//! testbed:
//!
//! * [`clock::SimClock`] — a virtual nanosecond clock that all simulated
//!   components charge their costs to.
//! * [`cost::CostModel`] — per-operation CPU costs (system-call entry,
//!   label checks, page zeroing, context switches, ...), with separate
//!   calibrations for the HiStar, Linux-like and OpenBSD-like models.
//! * [`disk::SimDisk`] — a block device with seek/rotational latency,
//!   sequential bandwidth, a write cache and optional read look-ahead,
//!   matching the Seagate ST340014A parameters the paper cites.
//! * [`net::SimNetwork`] — a latency/bandwidth pipe modelling the 100 Mbps
//!   Ethernet used in Figure 13.
//! * [`rng::SimRng`] — a small deterministic PRNG for workload generation.
//!
//! Everything here is deterministic: the same workload produces the same
//! simulated time on every run, which keeps the benchmark harness stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod disk;
pub mod net;
pub mod rng;

pub use clock::{SimClock, SimDuration};
pub use cost::{CostModel, OsFlavor};
pub use disk::{DiskConfig, DiskStats, SimDisk};
pub use net::{LinkConfig, NetConfig, SimNetwork, Topology};
pub use rng::SimRng;
