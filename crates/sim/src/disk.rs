//! A simulated IDE disk with seek, rotation and bandwidth costs.
//!
//! The paper's testbed used a 40 GB, 7,200 RPM Seagate ST340014A EIDE drive;
//! §7.1 cites its 8.3 ms rotational latency (full revolution) and ~58 MB/s
//! sequential bandwidth, and attributes Linux's uncached small-file read
//! advantage to the drive's read look-ahead combined with ext3's directory
//! clustering.  [`SimDisk`] models exactly those effects:
//!
//! * sequential access pays only transfer time;
//! * a random access pays seek + rotational delay;
//! * an optional look-ahead cache makes a read *near* the previous one hit
//!   the track cache instead of paying rotation;
//! * an in-memory store holds block contents so the single-level store can
//!   actually round-trip data through the "disk".

use crate::clock::{SimClock, SimDuration};
use std::collections::HashMap;

/// Size of one disk sector/block in bytes.
pub const BLOCK_SIZE: u64 = 4096;

/// Configuration for a [`SimDisk`].
#[derive(Clone, Copy, Debug)]
pub struct DiskConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Average seek time for a random access.
    pub seek: SimDuration,
    /// Average rotational delay for a random access (half a revolution of a
    /// 7,200 RPM spindle is ~4.17 ms; the paper quotes the full-revolution
    /// figure of 8.3 ms when discussing worst-case per-file reads).
    pub rotational: SimDuration,
    /// Sequential transfer bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Whether the drive's read look-ahead (track cache) is enabled.
    pub read_lookahead: bool,
    /// How many bytes beyond the last access the look-ahead covers.
    pub lookahead_window: u64,
    /// Whether a volatile write cache absorbs writes until `flush`.
    pub write_cache: bool,
}

impl Default for DiskConfig {
    fn default() -> DiskConfig {
        DiskConfig {
            capacity: 40 * 1024 * 1024 * 1024,
            seek: SimDuration::from_micros(8_500),
            rotational: SimDuration::from_micros(4_170),
            bandwidth: 58 * 1024 * 1024,
            read_lookahead: true,
            lookahead_window: 512 * 1024,
            write_cache: false,
        }
    }
}

impl DiskConfig {
    /// The paper's drive with read look-ahead disabled (the "no IDE disk
    /// prefetch" row of Figure 12).
    pub fn no_lookahead() -> DiskConfig {
        DiskConfig {
            read_lookahead: false,
            ..DiskConfig::default()
        }
    }
}

/// Statistics accumulated by a [`SimDisk`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of read operations issued to the device.
    pub reads: u64,
    /// Number of write operations issued to the device.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Read operations satisfied by the look-ahead/track cache.
    pub lookahead_hits: u64,
    /// Number of explicit cache flushes.
    pub flushes: u64,
    /// Total simulated time spent on this device.
    pub busy: SimDuration,
}

impl histar_obs::MetricSource for DiskStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("disk.reads", self.reads);
        set.counter("disk.writes", self.writes);
        set.counter("disk.bytes_read", self.bytes_read);
        set.counter("disk.bytes_written", self.bytes_written);
        set.counter("disk.lookahead_hits", self.lookahead_hits);
        set.counter("disk.flushes", self.flushes);
        set.counter("disk.busy_ns", self.busy.as_nanos());
    }
}

/// A simulated block device.
///
/// All operations advance the machine-wide [`SimClock`] by the simulated
/// service time and record per-device statistics.
#[derive(Debug)]
pub struct SimDisk {
    config: DiskConfig,
    clock: SimClock,
    blocks: HashMap<u64, Vec<u8>>,
    head_pos: u64,
    lookahead_end: u64,
    dirty: u64,
    stats: DiskStats,
}

impl SimDisk {
    /// Creates a disk with the given configuration, charging time to `clock`.
    pub fn new(config: DiskConfig, clock: SimClock) -> SimDisk {
        SimDisk {
            config,
            clock,
            blocks: HashMap::new(),
            head_pos: 0,
            lookahead_end: 0,
            dirty: 0,
            stats: DiskStats::default(),
        }
    }

    /// The disk's configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// The machine clock this disk charges to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The full on-disk image as `(block number, contents)` pairs, sorted
    /// by block number — every block ever written, without charging any
    /// simulated time.  Two disks holding the same data compare equal
    /// block-for-block; snapshot byte-stability tests rely on this.
    pub fn image(&self) -> Vec<(u64, &[u8])> {
        let mut blocks: Vec<(u64, &[u8])> = self
            .blocks
            .iter()
            .map(|(n, data)| (*n, data.as_slice()))
            .collect();
        blocks.sort_unstable_by_key(|(n, _)| *n);
        blocks
    }

    fn charge(&mut self, d: SimDuration) {
        self.stats.busy += d;
        self.clock.advance(d);
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.config.bandwidth == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.config.bandwidth as f64)
    }

    fn positioning_time(&mut self, offset: u64, is_read: bool) -> SimDuration {
        let sequential = offset >= self.head_pos && offset - self.head_pos <= BLOCK_SIZE;
        if sequential {
            return SimDuration::ZERO;
        }
        if is_read
            && self.config.read_lookahead
            && offset >= self.head_pos.saturating_sub(self.config.lookahead_window)
            && offset < self.lookahead_end
        {
            self.stats.lookahead_hits += 1;
            // Served from the track cache: a fraction of the rotational
            // delay to shift data out of the buffer.
            return SimDuration::from_nanos(self.config.rotational.as_nanos() / 10);
        }
        self.config.seek + self.config.rotational
    }

    /// Reads `len` bytes starting at byte `offset`.
    ///
    /// Returns the data (zeros for never-written ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn read(&mut self, offset: u64, len: u64) -> Vec<u8> {
        assert!(
            offset + len <= self.config.capacity,
            "read beyond end of device"
        );
        let pos = self.positioning_time(offset, true);
        let xfer = self.transfer_time(len);
        self.charge(pos + xfer);
        self.head_pos = offset + len;
        if self.config.read_lookahead {
            self.lookahead_end = offset + len + self.config.lookahead_window;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += len;

        let mut out = vec![0u8; len as usize];
        let mut cursor = 0u64;
        while cursor < len {
            let abs = offset + cursor;
            let block = abs / BLOCK_SIZE;
            let within = (abs % BLOCK_SIZE) as usize;
            let chunk = core::cmp::min(BLOCK_SIZE - within as u64, len - cursor) as usize;
            if let Some(data) = self.blocks.get(&block) {
                out[cursor as usize..cursor as usize + chunk]
                    .copy_from_slice(&data[within..within + chunk]);
            }
            cursor += chunk as u64;
        }
        out
    }

    /// Writes `data` at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        let len = data.len() as u64;
        assert!(
            offset + len <= self.config.capacity,
            "write beyond end of device"
        );
        let cost = if self.config.write_cache {
            // Absorbed by the cache; paid at flush time.
            self.dirty += len;
            self.transfer_time(len)
        } else {
            self.positioning_time(offset, false) + self.transfer_time(len)
        };
        self.charge(cost);
        self.head_pos = offset + len;
        self.stats.writes += 1;
        self.stats.bytes_written += len;

        let mut cursor = 0u64;
        while cursor < len {
            let abs = offset + cursor;
            let block = abs / BLOCK_SIZE;
            let within = (abs % BLOCK_SIZE) as usize;
            let chunk = core::cmp::min(BLOCK_SIZE - within as u64, len - cursor) as usize;
            let entry = self
                .blocks
                .entry(block)
                .or_insert_with(|| vec![0u8; BLOCK_SIZE as usize]);
            entry[within..within + chunk]
                .copy_from_slice(&data[cursor as usize..cursor as usize + chunk]);
            cursor += chunk as u64;
        }
    }

    /// Forces any cached writes to stable storage.
    pub fn flush(&mut self) {
        self.stats.flushes += 1;
        if self.config.write_cache && self.dirty > 0 {
            let cost = self.config.seek + self.config.rotational + self.transfer_time(self.dirty);
            self.dirty = 0;
            self.charge(cost);
        } else {
            // Even an empty flush costs a command round-trip.
            self.charge(SimDuration::from_micros(50));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskConfig::default(), SimClock::new())
    }

    #[test]
    fn data_round_trips() {
        let mut d = disk();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        d.write(12_345, &payload);
        assert_eq!(d.read(12_345, payload.len() as u64), payload);
        // Unwritten space reads as zeros.
        assert_eq!(d.read(10 * 1024 * 1024, 16), vec![0u8; 16]);
    }

    #[test]
    fn sequential_reads_avoid_seeks() {
        let mut d = disk();
        d.write(0, &vec![7u8; (BLOCK_SIZE * 64) as usize]);
        d.reset_stats();
        let clock_before = d.clock().now();
        // Sequential scan.
        for i in 0..64 {
            d.read(i * BLOCK_SIZE, BLOCK_SIZE);
        }
        let seq_time = d.clock().now() - clock_before;

        // Defeat the lookahead window by jumping far away each time.
        let mut d2 = SimDisk::new(DiskConfig::no_lookahead(), SimClock::new());
        d2.write(0, &vec![7u8; (BLOCK_SIZE * 64) as usize]);
        let before = d2.clock().now();
        for i in 0..64u64 {
            let offset = (i * 7919 * BLOCK_SIZE) % (1024 * BLOCK_SIZE);
            d2.read(offset, BLOCK_SIZE);
        }
        let rand_time = d2.clock().now() - before;
        assert!(
            rand_time.as_nanos() > seq_time.as_nanos() * 10,
            "random I/O should be far slower: {rand_time} vs {seq_time}"
        );
    }

    #[test]
    fn lookahead_accelerates_nearby_reads() {
        let mut with = SimDisk::new(DiskConfig::default(), SimClock::new());
        let mut without = SimDisk::new(DiskConfig::no_lookahead(), SimClock::new());
        for d in [&mut with, &mut without] {
            d.write(0, &vec![1u8; (BLOCK_SIZE * 256) as usize]);
            d.reset_stats();
        }
        // Read blocks in a directory-clustered pattern: nearby but not
        // strictly sequential (every other block).
        for d in [&mut with, &mut without] {
            let start = d.clock().now();
            for i in 0..128u64 {
                d.read(i * 2 * BLOCK_SIZE, 1024);
            }
            let took = d.clock().now() - start;
            if d.config().read_lookahead {
                assert!(d.stats().lookahead_hits > 100);
                assert!(took.as_millis() < 100);
            } else {
                assert_eq!(d.stats().lookahead_hits, 0);
                assert!(took.as_millis() > 1000);
            }
        }
    }

    #[test]
    fn bandwidth_bounds_sequential_transfer() {
        let mut d = disk();
        let mb100 = 100 * 1024 * 1024u64;
        let before = d.clock().now();
        // Write 100 MB sequentially in 8 KB chunks.
        let chunk = vec![0xabu8; 8192];
        let mut off = 0;
        while off < mb100 {
            d.write(off, &chunk);
            off += 8192;
        }
        let took = (d.clock().now() - before).as_secs_f64();
        // 100 MB at 58 MB/s is ~1.7 s; allow generous slack for the initial
        // positioning but it must be in the low seconds.
        assert!(took > 1.0 && took < 4.0, "sequential write took {took}");
    }

    #[test]
    fn write_cache_defers_cost_to_flush() {
        let cfg = DiskConfig {
            write_cache: true,
            ..DiskConfig::default()
        };
        let mut d = SimDisk::new(cfg, SimClock::new());
        for i in 0..100u64 {
            d.write(i * 1000 * BLOCK_SIZE, &[1u8; 512]);
        }
        let before_flush = d.clock().now();
        assert!(before_flush.as_millis() < 100, "writes absorbed by cache");
        d.flush();
        assert!(d.stats().flushes == 1);
    }

    #[test]
    #[should_panic(expected = "beyond end of device")]
    fn read_past_end_panics() {
        let mut d = SimDisk::new(
            DiskConfig {
                capacity: 1024,
                ..DiskConfig::default()
            },
            SimClock::new(),
        );
        d.read(1000, 100);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        d.write(0, &[1, 2, 3]);
        d.read(0, 3);
        d.flush();
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 3);
        assert_eq!(s.bytes_read, 3);
        assert_eq!(s.flushes, 1);
        assert!(s.busy > SimDuration::ZERO);
    }
}
