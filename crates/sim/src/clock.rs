//! The virtual clock that simulated components charge time to.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of simulated time, stored in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s * 1e9).round().max(0.0) as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by an integer factor.
    pub fn scale(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.scale(rhs)
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} us", self.as_micros_f64())
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

/// A shared, monotonically increasing virtual clock.
///
/// Handles are cheap to clone and all refer to the same underlying counter,
/// so the kernel, disk, network and workload code can all charge time to a
/// single machine-wide clock.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a new clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time since boot.
    pub fn now(&self) -> SimDuration {
        SimDuration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimDuration {
        let new = self
            .nanos
            .fetch_add(d.as_nanos(), Ordering::Relaxed)
            .wrapping_add(d.as_nanos());
        SimDuration::from_nanos(new)
    }

    /// Measures the simulated time consumed by `f`.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert!((SimDuration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!((b - a), SimDuration::ZERO, "subtraction saturates");
        assert_eq!((a * 3).as_micros(), 30);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total.as_micros(), 18);
    }

    #[test]
    fn clock_advances_and_is_shared() {
        let clock = SimClock::new();
        let other = clock.clone();
        assert_eq!(clock.now(), SimDuration::ZERO);
        clock.advance(SimDuration::from_micros(5));
        other.advance(SimDuration::from_micros(7));
        assert_eq!(clock.now().as_micros(), 12);
    }

    #[test]
    fn measure_reports_elapsed() {
        let clock = SimClock::new();
        let (value, took) = clock.measure(|| {
            clock.advance(SimDuration::from_millis(3));
            42
        });
        assert_eq!(value, 42);
        assert_eq!(took.as_millis(), 3);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12 ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000 us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000 ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000 s");
    }
}
