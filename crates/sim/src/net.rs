//! A simulated network link.
//!
//! Figure 13 transfers a 100 MB file over a 100 Mbps Ethernet; all three
//! operating systems saturate the link, so the interesting property of the
//! model is simply that transfer time is bandwidth-bound and that per-packet
//! CPU costs are charged separately by the protocol stack.

use crate::clock::{SimClock, SimDuration};

/// Configuration for a [`SimNetwork`].
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Maximum transmission unit in bytes.
    pub mtu: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            bandwidth_bps: 100_000_000,
            latency: SimDuration::from_micros(100),
            mtu: 1500,
        }
    }
}

/// Statistics for a simulated link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets transmitted.
    pub packets_tx: u64,
    /// Packets received.
    pub packets_rx: u64,
    /// Bytes transmitted.
    pub bytes_tx: u64,
    /// Bytes received.
    pub bytes_rx: u64,
}

/// A half-duplex simulated network link charging time to the machine clock.
#[derive(Debug)]
pub struct SimNetwork {
    config: NetConfig,
    clock: SimClock,
    stats: NetStats,
}

impl SimNetwork {
    /// Creates a link with the given configuration.
    pub fn new(config: NetConfig, clock: SimClock) -> SimNetwork {
        SimNetwork {
            config,
            clock,
            stats: NetStats::default(),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of MTU-sized packets needed for a payload of `bytes` bytes.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        let mtu = self.config.mtu as u64;
        bytes.div_ceil(mtu)
    }

    /// Serialization (wire) time for `bytes` bytes, excluding latency.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        if self.config.bandwidth_bps == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.config.bandwidth_bps as f64)
    }

    /// Transmits `bytes` bytes out of the machine, advancing the clock.
    pub fn transmit(&mut self, bytes: u64) -> SimDuration {
        let t = self.wire_time(bytes) + self.config.latency;
        self.clock.advance(t);
        self.stats.packets_tx += self.packets_for(bytes);
        self.stats.bytes_tx += bytes;
        t
    }

    /// Receives `bytes` bytes into the machine, advancing the clock.
    pub fn receive(&mut self, bytes: u64) -> SimDuration {
        let t = self.wire_time(bytes) + self.config.latency;
        self.clock.advance(t);
        self.stats.packets_rx += self.packets_for(bytes);
        self.stats.bytes_rx += bytes;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_megabytes_takes_about_nine_seconds() {
        // The paper's wget benchmark: 100 MB over 100 Mbps ≈ 8.4 s of wire
        // time; all OSes report ~9 s with protocol overheads.
        let clock = SimClock::new();
        let mut net = SimNetwork::new(NetConfig::default(), clock.clone());
        let total = 100 * 1024 * 1024u64;
        let mut received = 0u64;
        while received < total {
            let chunk = core::cmp::min(1448, total - received);
            net.receive(chunk);
            received += chunk;
        }
        let secs = clock.now().as_secs_f64();
        assert!(secs > 8.0 && secs < 20.0, "transfer took {secs} s");
        assert_eq!(net.stats().bytes_rx, total);
    }

    #[test]
    fn packet_counts() {
        let net = SimNetwork::new(NetConfig::default(), SimClock::new());
        assert_eq!(net.packets_for(0), 0);
        assert_eq!(net.packets_for(1), 1);
        assert_eq!(net.packets_for(1500), 1);
        assert_eq!(net.packets_for(1501), 2);
    }

    #[test]
    fn transmit_and_receive_track_stats() {
        let mut net = SimNetwork::new(NetConfig::default(), SimClock::new());
        net.transmit(3000);
        net.receive(1000);
        let s = net.stats();
        assert_eq!(s.bytes_tx, 3000);
        assert_eq!(s.bytes_rx, 1000);
        assert_eq!(s.packets_tx, 2);
        assert_eq!(s.packets_rx, 1);
    }

    #[test]
    fn wire_time_scales_with_bandwidth() {
        let fast = SimNetwork::new(
            NetConfig {
                bandwidth_bps: 1_000_000_000,
                ..NetConfig::default()
            },
            SimClock::new(),
        );
        let slow = SimNetwork::new(NetConfig::default(), SimClock::new());
        assert!(fast.wire_time(1_000_000) < slow.wire_time(1_000_000));
    }
}
