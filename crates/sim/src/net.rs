//! A simulated network link.
//!
//! Figure 13 transfers a 100 MB file over a 100 Mbps Ethernet; all three
//! operating systems saturate the link, so the interesting property of the
//! model is simply that transfer time is bandwidth-bound and that per-packet
//! CPU costs are charged separately by the protocol stack.

use crate::clock::{SimClock, SimDuration};

/// Configuration for a [`SimNetwork`].
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Maximum transmission unit in bytes.
    pub mtu: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            bandwidth_bps: 100_000_000,
            latency: SimDuration::from_micros(100),
            mtu: 1500,
        }
    }
}

/// Statistics for a simulated link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets transmitted.
    pub packets_tx: u64,
    /// Packets received.
    pub packets_rx: u64,
    /// Bytes transmitted.
    pub bytes_tx: u64,
    /// Bytes received.
    pub bytes_rx: u64,
}

impl histar_obs::MetricSource for NetStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("net.packets_tx", self.packets_tx);
        set.counter("net.packets_rx", self.packets_rx);
        set.counter("net.bytes_tx", self.bytes_tx);
        set.counter("net.bytes_rx", self.bytes_rx);
    }
}

/// A half-duplex simulated network link charging time to the machine clock.
#[derive(Debug)]
pub struct SimNetwork {
    config: NetConfig,
    clock: SimClock,
    stats: NetStats,
}

impl SimNetwork {
    /// Creates a link with the given configuration.
    pub fn new(config: NetConfig, clock: SimClock) -> SimNetwork {
        SimNetwork {
            config,
            clock,
            stats: NetStats::default(),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of MTU-sized packets needed for a payload of `bytes` bytes.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        let mtu = self.config.mtu as u64;
        bytes.div_ceil(mtu)
    }

    /// Serialization (wire) time for `bytes` bytes, excluding latency.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        if self.config.bandwidth_bps == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.config.bandwidth_bps as f64)
    }

    /// Transmits `bytes` bytes out of the machine, advancing the clock.
    pub fn transmit(&mut self, bytes: u64) -> SimDuration {
        let t = self.wire_time(bytes) + self.config.latency;
        self.clock.advance(t);
        self.stats.packets_tx += self.packets_for(bytes);
        self.stats.bytes_tx += bytes;
        t
    }

    /// Receives `bytes` bytes into the machine, advancing the clock.
    pub fn receive(&mut self, bytes: u64) -> SimDuration {
        let t = self.wire_time(bytes) + self.config.latency;
        self.clock.advance(t);
        self.stats.packets_rx += self.packets_for(bytes);
        self.stats.bytes_rx += bytes;
        t
    }
}

/// A multi-node network topology with per-link bandwidth, latency and
/// per-message CPU cost.
///
/// The exporter subsystem connects several simulated machines; each pair of
/// nodes may have its own link characteristics (a LAN link between two racks,
/// a WAN link between sites).  Links are symmetric and addressed by an
/// unordered node pair; pairs without an explicit entry fall back to the
/// default link.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: usize,
    default_link: LinkConfig,
    links: Vec<((usize, usize), LinkConfig)>,
}

/// Characteristics of one inter-node link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Bandwidth/latency/MTU of the wire itself.
    pub net: NetConfig,
    /// CPU time each endpoint spends per message (marshalling, interrupt
    /// handling); charged once per message on each side, which is what makes
    /// message batching profitable.
    pub per_message_cpu: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            net: NetConfig::default(),
            per_message_cpu: SimDuration::from_micros(10),
        }
    }
}

impl Topology {
    /// A fully connected topology of `nodes` nodes using the default link
    /// everywhere.
    pub fn fully_connected(nodes: usize) -> Topology {
        Topology {
            nodes,
            default_link: LinkConfig::default(),
            links: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Overrides the default link used by pairs without an explicit entry.
    pub fn set_default_link(&mut self, link: LinkConfig) {
        self.default_link = link;
    }

    /// Sets the link between `a` and `b` (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range or `a == b`.
    pub fn set_link(&mut self, a: usize, b: usize, link: LinkConfig) {
        assert!(a < self.nodes && b < self.nodes, "node index out of range");
        assert_ne!(a, b, "a node has no link to itself");
        let key = (a.min(b), a.max(b));
        if let Some(entry) = self.links.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = link;
        } else {
            self.links.push((key, link));
        }
    }

    /// The link between `a` and `b`.
    pub fn link(&self, a: usize, b: usize) -> LinkConfig {
        let key = (a.min(b), a.max(b));
        self.links
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| *l)
            .unwrap_or(self.default_link)
    }

    /// One-way transfer time for a message of `bytes` bytes from `a` to `b`:
    /// wire time plus propagation latency (CPU cost is charged separately by
    /// the endpoints via [`LinkConfig::per_message_cpu`]).
    pub fn transfer_time(&self, a: usize, b: usize, bytes: u64) -> SimDuration {
        let link = self.link(a, b);
        let wire = if link.net.bandwidth_bps == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 * 8.0 / link.net.bandwidth_bps as f64)
        };
        wire + link.net.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_megabytes_takes_about_nine_seconds() {
        // The paper's wget benchmark: 100 MB over 100 Mbps ≈ 8.4 s of wire
        // time; all OSes report ~9 s with protocol overheads.
        let clock = SimClock::new();
        let mut net = SimNetwork::new(NetConfig::default(), clock.clone());
        let total = 100 * 1024 * 1024u64;
        let mut received = 0u64;
        while received < total {
            let chunk = core::cmp::min(1448, total - received);
            net.receive(chunk);
            received += chunk;
        }
        let secs = clock.now().as_secs_f64();
        assert!(secs > 8.0 && secs < 20.0, "transfer took {secs} s");
        assert_eq!(net.stats().bytes_rx, total);
    }

    #[test]
    fn packet_counts() {
        let net = SimNetwork::new(NetConfig::default(), SimClock::new());
        assert_eq!(net.packets_for(0), 0);
        assert_eq!(net.packets_for(1), 1);
        assert_eq!(net.packets_for(1500), 1);
        assert_eq!(net.packets_for(1501), 2);
    }

    #[test]
    fn transmit_and_receive_track_stats() {
        let mut net = SimNetwork::new(NetConfig::default(), SimClock::new());
        net.transmit(3000);
        net.receive(1000);
        let s = net.stats();
        assert_eq!(s.bytes_tx, 3000);
        assert_eq!(s.bytes_rx, 1000);
        assert_eq!(s.packets_tx, 2);
        assert_eq!(s.packets_rx, 1);
    }

    #[test]
    fn topology_links_are_symmetric_and_default() {
        let mut t = Topology::fully_connected(3);
        assert_eq!(t.nodes(), 3);
        let slow = LinkConfig {
            net: NetConfig {
                bandwidth_bps: 1_000_000,
                latency: SimDuration::from_millis(20),
                mtu: 1500,
            },
            per_message_cpu: SimDuration::from_micros(50),
        };
        t.set_link(2, 0, slow);
        // The link is the same in both directions.
        assert_eq!(t.link(0, 2).net.bandwidth_bps, 1_000_000);
        assert_eq!(t.link(2, 0).net.latency, SimDuration::from_millis(20));
        // Unconfigured pairs use the default link.
        assert_eq!(
            t.link(0, 1).net.bandwidth_bps,
            NetConfig::default().bandwidth_bps
        );
        // Transfer across the slow WAN link dominates the LAN link.
        assert!(t.transfer_time(0, 2, 10_000) > t.transfer_time(0, 1, 10_000));
        // Replacing a link overwrites rather than accumulating entries.
        t.set_link(0, 2, LinkConfig::default());
        assert_eq!(
            t.link(0, 2).net.bandwidth_bps,
            NetConfig::default().bandwidth_bps
        );
    }

    #[test]
    fn transfer_time_includes_latency() {
        let t = Topology::fully_connected(2);
        assert!(t.transfer_time(0, 1, 0) >= NetConfig::default().latency);
    }

    #[test]
    fn wire_time_scales_with_bandwidth() {
        let fast = SimNetwork::new(
            NetConfig {
                bandwidth_bps: 1_000_000_000,
                ..NetConfig::default()
            },
            SimClock::new(),
        );
        let slow = SimNetwork::new(NetConfig::default(), SimClock::new());
        assert!(fast.wire_time(1_000_000) < slow.wire_time(1_000_000));
    }
}
