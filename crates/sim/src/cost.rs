//! CPU cost model for the simulated operating systems.
//!
//! The paper's microbenchmark differences come from *structural* properties:
//! HiStar's fork/exec issues 317 system calls against a lower-level kernel
//! interface where Linux issues 9; HiStar does not pre-zero pages; spawn
//! avoids most of fork's work (127 syscalls); gate calls and label checks
//! have costs proportional to label size; switching address spaces costs a
//! TLB flush unless the `invlpg` optimization applies.  The cost model makes
//! each of those structural costs explicit so that the benchmark harness can
//! charge them to the [`SimClock`](crate::clock::SimClock).
//!
//! The per-operation constants are calibrated to a 2.4 GHz Athlon64-class
//! machine (the paper's testbed).  EXPERIMENTS.md discusses calibration.

use crate::clock::SimDuration;

/// Which operating-system model a cost profile describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OsFlavor {
    /// The HiStar kernel plus its user-level Unix library.
    HiStar,
    /// A Linux 2.6-era monolithic kernel with ext3.
    LinuxLike,
    /// An OpenBSD 3.9-era monolithic kernel with an in-memory file system.
    OpenBsdLike,
}

impl OsFlavor {
    /// All modelled flavors, in the column order used by Figure 12/13.
    pub const ALL: [OsFlavor; 3] = [OsFlavor::HiStar, OsFlavor::LinuxLike, OsFlavor::OpenBsdLike];

    /// Human-readable name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            OsFlavor::HiStar => "HiStar",
            OsFlavor::LinuxLike => "Linux",
            OsFlavor::OpenBsdLike => "OpenBSD",
        }
    }
}

/// Per-operation CPU costs for one OS flavor.
///
/// All values are simulated time per operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Which OS this profile models.
    pub flavor: OsFlavor,
    /// Fixed cost of entering and leaving the kernel for one system call.
    pub syscall: SimDuration,
    /// Cost of decoding one additional entry of an already-trapped
    /// submission batch (the kernel is entered once per batch; every entry
    /// after the first pays only this decode cost instead of `syscall`).
    pub syscall_batched_entry: SimDuration,
    /// Cost of comparing one label entry (category/level pair) during a
    /// label check.  Only meaningful for HiStar.
    pub label_check_entry: SimDuration,
    /// Fixed overhead of one label check (hashing, cache lookup).
    pub label_check_base: SimDuration,
    /// Cost of a hit in the immutable-label comparison cache.
    pub label_cache_hit: SimDuration,
    /// Cost of zeroing one 4 KiB page.
    pub page_zero: SimDuration,
    /// Cost of copying one 4 KiB page.
    pub page_copy: SimDuration,
    /// Cost of handling one page fault (kernel entry, lookup, map).
    pub page_fault: SimDuration,
    /// Cost of a context switch that must flush the whole TLB.
    pub context_switch_full: SimDuration,
    /// Cost of a context switch between threads of the same address space
    /// using `invlpg` (HiStar's optimization).
    pub context_switch_invlpg: SimDuration,
    /// Cost of a gate invocation beyond its constituent label checks.
    pub gate_overhead: SimDuration,
    /// Per-byte cost of copying data in memory (pipes, read/write).
    pub copy_per_byte: SimDuration,
    /// Per-byte cost of the scanner/compiler style CPU work in Figure 13.
    pub compute_per_byte: SimDuration,
    /// Scheduler/wakeup latency for blocking IPC.
    pub wakeup: SimDuration,
}

impl CostModel {
    /// Cost profile for the given OS flavor.
    pub fn for_flavor(flavor: OsFlavor) -> CostModel {
        match flavor {
            // HiStar: very small kernel, cheap syscalls, but every call does
            // label checks and the Unix environment is user-level.
            OsFlavor::HiStar => CostModel {
                flavor,
                syscall: SimDuration::from_nanos(250),
                syscall_batched_entry: SimDuration::from_nanos(30),
                label_check_entry: SimDuration::from_nanos(40),
                label_check_base: SimDuration::from_nanos(60),
                label_cache_hit: SimDuration::from_nanos(15),
                page_zero: SimDuration::from_nanos(3_000), // no pre-zeroed pool
                page_copy: SimDuration::from_nanos(1_500),
                page_fault: SimDuration::from_nanos(1_200),
                context_switch_full: SimDuration::from_nanos(1_400),
                context_switch_invlpg: SimDuration::from_nanos(450),
                gate_overhead: SimDuration::from_nanos(800),
                copy_per_byte: SimDuration::from_nanos(1),
                compute_per_byte: SimDuration::from_nanos(170),
                wakeup: SimDuration::from_nanos(400),
            },
            // Linux: heavier syscall path, but highly tuned fork/exec with a
            // pre-zeroed page pool and in-kernel pipes.
            OsFlavor::LinuxLike => CostModel {
                flavor,
                syscall: SimDuration::from_nanos(380),
                syscall_batched_entry: SimDuration::from_nanos(60),
                label_check_entry: SimDuration::ZERO,
                label_check_base: SimDuration::ZERO,
                label_cache_hit: SimDuration::ZERO,
                page_zero: SimDuration::from_nanos(600), // pre-zeroed pool
                page_copy: SimDuration::from_nanos(1_500),
                page_fault: SimDuration::from_nanos(1_000),
                context_switch_full: SimDuration::from_nanos(1_300),
                context_switch_invlpg: SimDuration::from_nanos(1_300),
                gate_overhead: SimDuration::ZERO,
                copy_per_byte: SimDuration::from_nanos(1),
                compute_per_byte: SimDuration::from_nanos(170),
                wakeup: SimDuration::from_nanos(500),
            },
            // OpenBSD: lean kernel with fast IPC; in-memory file system in
            // the paper's configuration.
            OsFlavor::OpenBsdLike => CostModel {
                flavor,
                syscall: SimDuration::from_nanos(300),
                syscall_batched_entry: SimDuration::from_nanos(50),
                label_check_entry: SimDuration::ZERO,
                label_check_base: SimDuration::ZERO,
                label_cache_hit: SimDuration::ZERO,
                page_zero: SimDuration::from_nanos(600),
                page_copy: SimDuration::from_nanos(1_500),
                page_fault: SimDuration::from_nanos(1_100),
                context_switch_full: SimDuration::from_nanos(700),
                context_switch_invlpg: SimDuration::from_nanos(700),
                gate_overhead: SimDuration::ZERO,
                copy_per_byte: SimDuration::from_nanos(1),
                compute_per_byte: SimDuration::from_nanos(190),
                wakeup: SimDuration::from_nanos(250),
            },
        }
    }

    /// Cost of one HiStar label check over a label with `entries`
    /// non-default entries, with or without a comparison-cache hit.
    pub fn label_check(&self, entries: usize, cached: bool) -> SimDuration {
        if cached {
            self.label_cache_hit
        } else {
            self.label_check_base + self.label_check_entry * entries as u64
        }
    }

    /// Cost of copying `bytes` bytes of user data.
    pub fn copy(&self, bytes: u64) -> SimDuration {
        self.copy_per_byte * bytes
    }

    /// Cost of byte-proportional application compute (compression, signature
    /// matching, compilation) over `bytes` bytes.
    pub fn compute(&self, bytes: u64) -> SimDuration {
        self.compute_per_byte * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_flavors_have_profiles() {
        for f in OsFlavor::ALL {
            let m = CostModel::for_flavor(f);
            assert_eq!(m.flavor, f);
            assert!(m.syscall > SimDuration::ZERO);
        }
    }

    #[test]
    fn batched_entries_are_cheaper_than_full_traps() {
        for f in OsFlavor::ALL {
            let m = CostModel::for_flavor(f);
            assert!(m.syscall_batched_entry < m.syscall, "{f:?}");
            assert!(m.syscall_batched_entry > SimDuration::ZERO, "{f:?}");
        }
    }

    #[test]
    fn histar_syscalls_are_cheaper_than_linux() {
        let h = CostModel::for_flavor(OsFlavor::HiStar);
        let l = CostModel::for_flavor(OsFlavor::LinuxLike);
        assert!(h.syscall < l.syscall, "small kernel => cheap syscall path");
    }

    #[test]
    fn histar_pays_for_label_checks_and_zeroing() {
        let h = CostModel::for_flavor(OsFlavor::HiStar);
        let l = CostModel::for_flavor(OsFlavor::LinuxLike);
        assert!(h.label_check(4, false) > SimDuration::ZERO);
        assert_eq!(l.label_check(4, false), SimDuration::ZERO);
        assert!(
            h.page_zero > l.page_zero,
            "no pre-zeroed page pool on HiStar"
        );
    }

    #[test]
    fn label_cache_hit_is_cheaper_than_miss() {
        let h = CostModel::for_flavor(OsFlavor::HiStar);
        assert!(h.label_check(8, true) < h.label_check(8, false));
        // Cost grows with label size when uncached.
        assert!(h.label_check(16, false) > h.label_check(2, false));
    }

    #[test]
    fn invlpg_beats_full_flush_only_on_histar() {
        let h = CostModel::for_flavor(OsFlavor::HiStar);
        assert!(h.context_switch_invlpg < h.context_switch_full);
    }

    #[test]
    fn flavor_names() {
        assert_eq!(OsFlavor::HiStar.name(), "HiStar");
        assert_eq!(OsFlavor::LinuxLike.name(), "Linux");
        assert_eq!(OsFlavor::OpenBsdLike.name(), "OpenBSD");
    }

    #[test]
    fn copy_and_compute_scale_linearly() {
        let m = CostModel::for_flavor(OsFlavor::HiStar);
        assert_eq!(m.copy(1000).as_nanos(), 1000 * m.copy_per_byte.as_nanos());
        assert_eq!(
            m.compute(100).as_nanos(),
            100 * m.compute_per_byte.as_nanos()
        );
    }
}
