//! A small deterministic PRNG for workload generation.
//!
//! Benchmarks need random file contents, random write offsets and randomized
//! binary data "to be virus checked" (Figure 13); using a tiny xorshift*
//! generator keeps the harness deterministic and dependency-free.

/// A deterministic xorshift64* pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed (zero is mapped to a fixed non-zero
    /// value because xorshift has a fixed point at zero).
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // workload sizes used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniformly distributed f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fills a byte buffer with pseudo-random data.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Returns `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = SimRng::new(42);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
        for _ in 0..1_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_whole_buffer() {
        let mut rng = SimRng::new(5);
        let data = rng.bytes(1003);
        assert_eq!(data.len(), 1003);
        // Extremely unlikely to be all zeros.
        assert!(data.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SimRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
