//! Commonly used types, re-exported for examples and applications.

pub use histar_exporter::{Fabric, GlobalCategory};
pub use histar_kernel::{
    abi::{Completion, CompletionKind, Handle, SqEntry, SqOp, SubmissionQueue},
    machine::{Machine, MachineConfig},
    object::{ContainerEntry, ObjectId},
    sched::{RunLimit, Scheduler, Step},
    syscall::SyscallError,
    Kernel, Syscall, SyscallResult,
};
pub use histar_label::{Category, Label, Level};
pub use histar_sim::clock::SimClock;
pub use histar_unix::{process::Process, UnixEnv};
