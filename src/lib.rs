//! HiStar-rs: a user-space reproduction of the HiStar operating system
//! (*Making Information Flow Explicit in HiStar*, OSDI 2006).
//!
//! This facade crate re-exports every subsystem of the reproduction so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`label`] — Asbestos-style labels, categories and the flow lattice.
//! * [`sim`] — deterministic simulation substrate (clock, disk, cost model).
//! * [`store`] — single-level store: B+-trees, write-ahead log, checkpoints.
//! * [`kernel`] — the six kernel object types and the system-call surface.
//! * [`unix`] — the untrusted user-level Unix emulation library.
//! * [`net`] — netd, the simulated network device, and VPN isolation.
//! * [`obs`] — label-aware observability: metrics registry, histograms,
//!   flight-recorder span tracing.
//! * [`exporter`] — DStar-style exporters: label-checked RPC across nodes.
//! * [`auth`] — the decentralized user-authentication service.
//! * [`httpd`] — the §6.1 label-isolated web server: launcher, per-user
//!   workers, blocking sockets under load.
//! * [`apps`] — wrap/ClamAV-style scanner isolation and workloads.
//! * [`baseline`] — monolithic Unix-model comparators used by benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use histar::prelude::*;
//!
//! // Boot a machine: kernel + single-level store over a simulated disk.
//! let mut machine = Machine::boot(MachineConfig::default());
//! let ktid = machine.kernel_thread();
//!
//! // Allocate a category; the calling thread becomes its owner.
//! let cat = machine.kernel_mut().trap_create_category(ktid).unwrap();
//! assert!(machine.kernel().thread_label(ktid).unwrap().owns(cat));
//! ```

pub use histar_apps as apps;
pub use histar_auth as auth;
pub use histar_baseline as baseline;
pub use histar_exporter as exporter;
pub use histar_httpd as httpd;
pub use histar_kernel as kernel;
pub use histar_label as label;
pub use histar_net as net;
pub use histar_obs as obs;
pub use histar_sim as sim;
pub use histar_store as store;
pub use histar_unix as unix;

pub mod prelude;
