//! Untrusted user authentication (§6.2): no superuser, no fully-trusted
//! login process, and a wrong password grants nothing.
//!
//! Run with `cargo run --example untrusted_login`.

use histar::auth::{AuthService, AuthSystem, LoginOutcome};
use histar::unix::UnixEnv;

fn main() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // Create an account for bob and register his authentication service.
    let bob = env.create_user("bob").expect("create user");
    let mut auth = AuthSystem::new();
    auth.register(AuthService::new(bob.clone(), "correct horse battery"));

    // bob keeps a private file only his categories can open.
    env.mkdir(init, "/home", None).unwrap();
    env.write_file_as(
        init,
        "/home/bob-diary",
        b"...",
        Some(bob.private_file_label()),
    )
    .unwrap();

    // An sshd instance tries to log in with the wrong password first.
    let sshd = env.spawn(init, "/usr/sbin/sshd", None).unwrap();
    let bad = auth.login(&mut env, sshd, "bob", "hunter2").unwrap();
    println!(
        "wrong password  -> {bad:?}; can read diary? {}",
        env.read_file_as(sshd, "/home/bob-diary").is_ok()
    );
    assert_eq!(bad, LoginOutcome::BadPassword);

    // With the right password the grant gate hands over ur/uw ownership.
    let good = auth
        .login(&mut env, sshd, "bob", "correct horse battery")
        .unwrap();
    println!(
        "right password  -> {good:?}; can read diary? {}",
        env.read_file_as(sshd, "/home/bob-diary").is_ok()
    );
    assert_eq!(good, LoginOutcome::Granted);

    println!("\nauthentication log:");
    for line in auth.log.entries() {
        println!("  {line}");
    }
}
