//! Two-node untrusted login: the authentication gate lives on a remote
//! machine, and every hop of the call is label-checked by a kernel.
//!
//! Node 1 hosts bob's account and an auth service behind a gate whose
//! clearance `{login 0, 2}` admits only threads owning the `login`
//! category.  Node 0 runs sshd.  Without a delegation certificate for
//! `login`, node 1's *kernel* refuses the tunneled gate call; with one, the
//! call succeeds and bob's profile comes back still tainted in (the node-0
//! shadow of) his read category — the label crossed the wire with the data.
//!
//! Run with `cargo run --example remote_login`.

use histar::exporter::Fabric;
use histar::label::{Label, Level};
use histar::unix::gatecall::raise_taint_for;

const PASSWORD: &str = "correct horse battery";

fn main() {
    let mut fabric = Fabric::new(2);

    // ----- node 1: bob's machine ---------------------------------------
    let init1 = fabric.nodes[1].init();
    let (provider, login_cat, profile_label) = {
        let n = &mut fabric.nodes[1];
        let bob = n.env.create_user("bob").expect("create bob");
        let profile_label = Label::builder()
            .set(bob.read_cat, Level::L2)
            .set(bob.write_cat, Level::L0)
            .build();
        n.env
            .write_file_as(
                init1,
                "/bob-profile",
                b"bob: flags=admin",
                Some(profile_label.clone()),
            )
            .expect("write profile");
        let provider = n
            .env
            .spawn(init1, "/usr/sbin/authd", None)
            .expect("spawn authd");
        let thread = n.env.process(provider).expect("authd").thread;
        let login_cat = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(thread)
            .expect("login category");
        (provider, login_cat, profile_label)
    };
    let clearance = Label::builder()
        .set(login_cat, Level::L0)
        .default_level(Level::L2)
        .build();
    fabric
        .register_gated_service(
            1,
            "auth.login",
            provider,
            clearance,
            Box::new(move |env, worker, req| {
                let text = String::from_utf8_lossy(req);
                let Some((user, pass)) = text.split_once('\0') else {
                    return b"ERR malformed".to_vec();
                };
                if user != "bob" || pass != PASSWORD {
                    return b"DENIED".to_vec();
                }
                // Read the profile *tainted*: the worker does not own ur,
                // so the taint sticks and rides back with the reply.
                if raise_taint_for(env, worker, &profile_label).is_err() {
                    return b"ERR cannot taint".to_vec();
                }
                let st = match env.stat(worker, "/bob-profile") {
                    Ok(st) => st,
                    Err(e) => return format!("ERR {e}").into_bytes(),
                };
                let entry = histar::kernel::object::ContainerEntry::new(env.fs_root(), st.object);
                let thread = env.process(worker).expect("worker").thread;
                env.machine_mut()
                    .kernel_mut()
                    .trap_segment_read(thread, entry, 0, st.len)
                    .unwrap_or_else(|e| format!("ERR {e}").into_bytes())
            }),
        )
        .expect("register auth.login");
    // bob entrusts his categories to his node's exporter, or tainted
    // replies could never leave the machine.
    let bob = fabric.nodes[1].env.user("bob").expect("bob");
    fabric
        .export_category(1, init1, bob.read_cat)
        .expect("export ur");
    fabric
        .export_category(1, init1, bob.write_cat)
        .expect("export uw");

    // ----- node 0: the sshd frontend ------------------------------------
    let sshd = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env
            .spawn(init, "/usr/sbin/sshd", None)
            .expect("spawn sshd")
    };
    let request = format!("bob\0{PASSWORD}").into_bytes();

    // Without delegation, node 1's kernel refuses the tunneled gate call.
    let err = fabric
        .remote_call(0, sshd, 1, "auth.login", &request, None, &[])
        .expect_err("must be refused");
    println!("without delegation -> {err}");

    // Delegate `login` to node 0's exporter and grant sshd the shadow.
    let shadow_login = fabric
        .delegate(1, provider, login_cat, 0)
        .expect("delegate");
    fabric
        .grant_shadow(0, sshd, shadow_login)
        .expect("grant shadow");

    let bad = fabric
        .remote_call(
            0,
            sshd,
            1,
            "auth.login",
            b"bob\0hunter2",
            None,
            &[shadow_login],
        )
        .expect("call goes through");
    println!(
        "wrong password   -> {:?}",
        String::from_utf8_lossy(&fabric.read_reply(0, sshd, &bad).expect("read"))
    );

    let reply = fabric
        .remote_call(0, sshd, 1, "auth.login", &request, None, &[shadow_login])
        .expect("call goes through");
    let label = fabric.reply_label(0, &reply).expect("label");
    let bytes = fabric.read_reply(0, sshd, &reply).expect("read");
    println!(
        "right password   -> {:?}  (reply label on node 0: {label})",
        String::from_utf8_lossy(&bytes)
    );

    // The taint sticks: sshd cannot exfiltrate the profile untainted.
    let leak = fabric.nodes[0]
        .env
        .write_file_as(sshd, "/leak", &bytes, None);
    println!(
        "exfiltration     -> {}",
        match leak {
            Ok(_) => "ALLOWED (bug!)".to_string(),
            Err(e) => format!("refused: {e}"),
        }
    );

    println!(
        "\nsimulated time: node0 {:?}, node1 {:?}",
        fabric.nodes[0].env.machine().uptime(),
        fabric.nodes[1].env.machine().uptime()
    );
}
