//! A tour of the §6.1 web server: a burst of clients over blocking
//! sockets, per-user workers behind a single trusted launcher, and the
//! label check that makes a cross-user leak impossible.
//!
//! The scenario is the paper's: netd taints every connection `{i 2}` and
//! mints per-connection categories, the launcher (the only code owning
//! the network taint `i`) authenticates each request through the auth
//! gates, and a per-user worker — holding exactly one user's privilege —
//! serves that user's files back through the granted connection.
//!
//! Run with `cargo run --release --example httpd_tour`.

use histar::httpd::{run_httpd, HttpdParams};
use histar::kernel::sched::StopReason;

fn main() {
    let params = HttpdParams {
        clients: 120,
        users: 6,
        wrong_every: 10,
        seed: 0x70_75,
        trace_capacity: 1 << 18,
        recorder_capacity: 0,
    };
    println!(
        "booting httpd: {} clients across {} users (every {}th password wrong)\n",
        params.clients, params.users, params.wrong_every
    );

    let (world, report) = run_httpd(params).expect("httpd scenario");
    assert_eq!(report.stop, StopReason::AllComplete);
    assert!(world.failures.is_empty(), "failures: {:?}", world.failures);

    println!("served      : {:>6} requests (200 OK)", report.served);
    println!(
        "denied      : {:>6} requests (403, wrong password)",
        report.denied
    );
    println!(
        "workers     : {:>6} (one per authenticated user)",
        world.workers.len()
    );
    println!(
        "peak clients: {:>6} concurrently connected",
        report.high_water
    );
    println!();
    println!("simulated time : {}", report.elapsed);
    println!(
        "requests/sec   : {:.0} (simulated)",
        report.requests_per_sec
    );
    println!("p50 latency    : {}", report.p50_latency);
    println!("p99 latency    : {}", report.p99_latency);
    println!();

    // The blocking-I/O story, read off the scheduler counters: parked
    // threads cost nothing, and every wake is a kernel completion.
    let quanta_per_request = report.sched.quanta as f64 / report.served.max(1) as f64;
    println!(
        "quanta             : {} ({quanta_per_request:.1} per request — no busy-waiting)",
        report.sched.quanta
    );
    println!("completion wakeups : {}", report.sched.completion_wakeups);
    println!("context switches   : {}", report.sched.context_switches);
    println!("syscalls dispatched: {}", report.kernel.syscalls);
    println!("label checks       : {}", report.kernel.label_checks);
    println!();

    // The trusted surface: of every process in the run, only the
    // launcher owns the network taint category.  netd, the workers and
    // all the clients run without cross-user privilege.
    let kernel = world.env.machine().kernel();
    let launcher_thread = world.env.process(world.launcher).expect("launcher").thread;
    let launcher_label = kernel.thread_label(launcher_thread).expect("label");
    assert!(launcher_label.owns(world.netd.taint));
    let mut owners = 0;
    for worker in world.workers.values() {
        let thread = world.env.process(worker.pid).expect("worker").thread;
        if kernel
            .thread_label(thread)
            .expect("label")
            .owns(world.netd.taint)
        {
            owners += 1;
        }
    }
    println!(
        "trusted surface: the launcher owns the network taint; {owners} of {} workers do",
        world.workers.len()
    );
    println!(
        "audit trace    : {} records retained",
        kernel
            .syscall_trace()
            .expect("tracing enabled")
            .records()
            .count()
    );
    println!();
    println!("A compromised worker holds neither another user's read category");
    println!("nor another connection's write category — the kernel refuses the");
    println!("leak at the label check (see tests/information_flow.rs).");
}
