//! The batched submission/completion ABI in action: capability handles,
//! multi-call batches, and the amortized trap cost.
//!
//! A thread resolves its hot objects into typed `Handle`s once, then pushes
//! whole argument spills through one boundary crossing per batch.  Every
//! per-call label check and audit record is identical to the one-trap-per-
//! call stream — only the charged kernel entry/exit cost amortizes.
//!
//! Run with `cargo run --release --example batched_io`.

use histar::prelude::*;

fn main() {
    let mut machine = Machine::boot(MachineConfig::default());
    let tid = machine.kernel_thread();
    let root = machine.kernel().root_container();
    machine.kernel_mut().enable_syscall_trace(64);

    // One trap: create two segments (a log and a scratch buffer).
    let kernel = machine.kernel_mut();
    let results = kernel.submit_calls(
        tid,
        vec![
            Syscall::SegmentCreate {
                container: root,
                label: Label::unrestricted(),
                len: 64,
                descrip: "log".into(),
            },
            Syscall::SegmentCreate {
                container: root,
                label: Label::unrestricted(),
                len: 64,
                descrip: "scratch".into(),
            },
        ],
    );
    let ids: Vec<ObjectId> = results
        .into_iter()
        .map(|r| r.expect("creation succeeds").into_object_id())
        .collect();
    let (log, scratch) = (ids[0], ids[1]);

    // One more trap: resolve both into capability handles.  The kernel
    // performs the reachability check (observe the container, link
    // present) at install time; a thread can never install a handle for
    // an object it could not traverse to.
    let mut sq = SubmissionQueue::new();
    sq.open_handle(ContainerEntry::new(root, log));
    sq.open_handle(ContainerEntry::new(root, scratch));
    kernel.submit(tid, &mut sq);
    let handles: Vec<Handle> = kernel
        .reap_completions(tid)
        .into_iter()
        .map(|c| c.into_handle_result().expect("reachable entries"))
        .collect();
    let (log_h, scratch_h) = (handles[0], handles[1]);
    println!("handles installed: log={log_h}, scratch={scratch_h}");

    // A whole write/read spill as one batch, naming objects by handle.
    let results = kernel.submit_calls(
        tid,
        vec![
            Syscall::SegmentWrite {
                entry: log_h.entry(),
                offset: 0,
                data: b"batched".to_vec(),
            },
            Syscall::SegmentWrite {
                entry: scratch_h.entry(),
                offset: 0,
                data: b"abi".to_vec(),
            },
            Syscall::SegmentRead {
                entry: log_h.entry(),
                offset: 0,
                len: 7,
            },
        ],
    );
    assert_eq!(
        results[2],
        Ok(SyscallResult::Bytes(b"batched".to_vec())),
        "the read observes the write submitted earlier in the same batch"
    );

    // Revocation: unref the scratch segment; its handle dies with the link.
    kernel
        .trap_obj_unref(tid, ContainerEntry::new(root, scratch))
        .unwrap();
    let stale = kernel.dispatch(
        tid,
        Syscall::SegmentLen {
            entry: scratch_h.entry(),
        },
    );
    assert!(matches!(stale, Err(SyscallError::BadHandle(_))));
    println!("stale handle refused: {:?}", stale.unwrap_err());

    let stats = kernel.dispatch_stats();
    println!(
        "batches: {}, entries: {}, mean batch size: {:.2}",
        stats.batches,
        stats.batch_entries,
        stats.mean_batch_size()
    );
    println!("audit trace records one entry per call, seq continuous across batches:");
    for r in machine.kernel().syscall_trace().unwrap().records() {
        println!("  seq {:>2}  {:<16} ok={}", r.seq, r.syscall, r.ok);
    }
}
