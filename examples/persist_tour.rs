//! A tour of PersistFs, the store-backed persistent filesystem at
//! `/persist`: durable files whose inodes, directory entries and extents
//! are labeled records in the single-level store's B+-tree, with `fsync`
//! as a write-ahead-log append and crash recovery that replays the log
//! back into a mountable tree — labels included.
//!
//! Run with `cargo run --release --example persist_tour`.

use histar::kernel::{Machine, SyscallError};
use histar::unix::{UnixEnv, UnixError};

fn main() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // --- durable writes ---------------------------------------------------
    let alice = env.create_user("alice").unwrap();
    env.mkdir(init, "/persist/home", None).unwrap();
    env.write_file_as(
        init,
        "/persist/home/diary",
        b"day 1: the store remembers",
        Some(alice.private_file_label()),
    )
    .unwrap();
    env.fsync_path(init, "/persist/home/diary").unwrap();
    env.fsync_path(init, "/persist/home").unwrap();
    println!("wrote and fsynced /persist/home/diary (labeled {{ar 3, aw 0, 1}})");

    // A second file is written but never synced: the crash below must
    // lose it — and only it.
    env.write_file_as(init, "/persist/home/scratch", b"unsynced musings", None)
        .unwrap();
    println!("wrote /persist/home/scratch WITHOUT fsync");

    let wal = env.machine().store().wal_used();
    println!("write-ahead log holds {wal} bytes of synced records");

    // --- the crash --------------------------------------------------------
    // Tear the machine down mid-workload: everything in kernel memory is
    // gone; only the disk survives.
    let disk = env.into_machine().into_disk();
    let machine = Machine::recover(Default::default(), disk).expect("recovery");
    println!("crashed and recovered the machine from disk");

    // Remounting is automatic: the environment finds the formatted tree
    // in the store and reattaches it.
    let mut env = UnixEnv::on_machine(machine);
    let init = env.init_pid();

    // --- what survived ----------------------------------------------------
    let diary = env.read_file_as(init, "/persist/home/diary").unwrap();
    println!(
        "after recovery, /persist/home/diary reads {:?}",
        String::from_utf8(diary).unwrap()
    );
    let gone = env.read_file_as(init, "/persist/home/scratch");
    assert!(matches!(gone, Err(UnixError::NotFound(_))));
    println!("after recovery, /persist/home/scratch is cleanly absent: {gone:?}");

    // --- labels survived too ----------------------------------------------
    // The label rode inside the recovered record; an unprivileged process
    // is refused by the kernel's record check, not by library courtesy.
    let snoop = env.spawn(init, "/bin_snoop", None).unwrap();
    let denied = env.read_file_as(snoop, "/persist/home/diary");
    assert!(matches!(
        denied,
        Err(UnixError::Kernel(SyscallError::CannotObserveRecord(_)))
    ));
    println!("unprivileged reader on the recovered diary: {denied:?}");

    println!("persist tour complete");
}
