//! The paper's running example (§1, §6.1): an untrusted virus scanner that
//! can read a user's private files but cannot leak them anywhere.
//!
//! Run with `cargo run --example clamav_wrap`.

use histar::apps::{deploy_clamav, wrap_scan};
use histar::net::Netd;
use histar::unix::UnixEnv;

fn main() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // The network stack exists so we can demonstrate that the scanner
    // cannot reach it.
    let netd = Netd::start(&mut env, init, "internet").expect("netd");

    // Deploy ClamAV for user "bob": wrap owns the isolation category v, the
    // scanner runs tainted v3, the update daemon can write the database but
    // never read bob's files.
    let deployment = deploy_clamav(&mut env, "bob").expect("deploy ClamAV");

    // Bob's files, one of them "infected".
    env.mkdir(init, "/home", None).unwrap();
    let label = deployment.user.private_file_label();
    env.write_file_as(
        init,
        "/home/letter.txt",
        b"dear alice, ...",
        Some(label.clone()),
    )
    .unwrap();
    env.write_file_as(
        init,
        "/home/download.exe",
        b"MZ..EICAR-STANDARD-ANTIVIRUS-TEST..",
        Some(label),
    )
    .unwrap();

    // wrap runs the scanner over the files and reports back.
    let report = wrap_scan(
        &mut env,
        &deployment,
        &["/home/letter.txt", "/home/download.exe"],
    )
    .expect("scan");
    for (path, infected) in &report.results {
        println!("{path}: {}", if *infected { "INFECTED" } else { "clean" });
    }
    assert!(!report.leak_detected);

    // The compromised-scanner scenarios from the introduction all fail:
    let exfil = netd.send(&mut env, deployment.scanner, b"bob's secrets");
    println!("scanner -> network:            {exfil:?}");
    assert!(exfil.is_err());
    let tmp_drop = env.write_file_as(deployment.scanner, "/tmp-drop", b"secrets", None);
    println!(
        "scanner -> /tmp for updater:   {:?}",
        tmp_drop.as_ref().err()
    );
    assert!(tmp_drop.is_err());
    let daemon_read = env.read_file_as(deployment.update_daemon, "/home/letter.txt");
    println!(
        "update daemon -> user files:   {:?}",
        daemon_read.as_ref().err()
    );
    assert!(daemon_read.is_err());

    println!("\nClamAV is isolated: only wrap's 110 lines are trusted with bob's data.");
}
