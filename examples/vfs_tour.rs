//! A tour of the vnode-based VFS: mounts, `/proc` label filtering,
//! `/dev` devices, and the batched descriptor hot path.
//!
//! Run with `cargo run --release --example vfs_tour`.

use histar::kernel::DispatchStats;
use histar::label::Level;
use histar::unix::fs::OpenFlags;
use histar::unix::UnixEnv;

fn main() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // --- mounts -----------------------------------------------------------
    let exported = env.mkdir(init, "/exported", None).unwrap();
    env.write_file_as(init, "/exported/status", b"ready\n", None)
        .unwrap();
    env.mount("/srv", exported);
    println!(
        "mounted /srv -> /exported; /srv/status reads {:?}",
        String::from_utf8(env.read_file_as(init, "/srv/status").unwrap()).unwrap()
    );

    // --- /dev -------------------------------------------------------------
    let dev = env.readdir(init, "/dev").unwrap();
    println!(
        "/dev holds: {}",
        dev.iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let ur = env
        .open(init, "/dev/urandom", OpenFlags::read_only())
        .unwrap();
    let noise = env.read(init, ur, 8).unwrap();
    env.close(init, ur).unwrap();
    println!("/dev/urandom says {noise:02x?}");
    let console = env
        .open(
            init,
            "/dev/console",
            OpenFlags {
                write: true,
                ..Default::default()
            },
        )
        .unwrap();
    env.write(init, console, b"hello from the vfs tour\n")
        .unwrap();
    env.close(init, console).unwrap();
    println!(
        "console device captured {} frame(s)",
        env.console_output().len()
    );

    // --- /proc and label filtering ----------------------------------------
    let init_thread = env.process(init).unwrap().thread;
    let taint = env.kernel_mut().trap_create_category(init_thread).unwrap();
    env.process_record_mut(init)
        .unwrap()
        .extra_ownership
        .push(taint);
    let observer = env
        .spawn_with_label(init, "/bin/observer", vec![], vec![(taint, Level::L3)])
        .unwrap();
    let victim = env.spawn(init, "/bin/victim", None).unwrap();
    let pids: Vec<String> = env
        .readdir(init, "/proc")
        .unwrap()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    println!("/proc lists pids: {}", pids.join(", "));
    let own = env
        .read_file_as(victim, &format!("/proc/{victim}/status"))
        .unwrap();
    println!(
        "pid {victim} reads its own status:\n{}",
        String::from_utf8(own).unwrap()
    );
    let denied = env.stat(observer, &format!("/proc/{victim}/status"));
    println!("tainted observer stat'ing pid {victim}: {denied:?}");

    // --- the batched hot path ---------------------------------------------
    env.write_file_as(init, "/big", &vec![7u8; 64 * 1024], None)
        .unwrap();
    let before: DispatchStats = env.machine().kernel().dispatch_stats();
    let fd = env.open(init, "/big", OpenFlags::read_only()).unwrap();
    let mut total = 0;
    loop {
        let chunk = env.read(init, fd, 4096).unwrap();
        if chunk.is_empty() {
            break;
        }
        total += chunk.len();
    }
    env.close(init, fd).unwrap();
    let io = env.machine().kernel().dispatch_stats().since(&before);
    println!(
        "read {total} bytes: {} boundary crossings for {} calls (mean batch size {:.2})",
        io.batches,
        io.batch_entries,
        io.mean_batch_size()
    );
    assert!(io.mean_batch_size() > 1.2, "seek updates ride data batches");
    println!("vfs tour complete");
}
