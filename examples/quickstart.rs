//! Quickstart: boot a HiStar machine, allocate categories, label objects and
//! watch the kernel enforce information flow.
//!
//! Run with `cargo run --example quickstart`.

use histar::label::{Label, Level};
use histar::prelude::*;

fn main() {
    // Boot a machine: kernel + single-level store over a simulated disk.
    let mut machine = Machine::boot(MachineConfig::default());
    let thread = machine.kernel_thread();
    let root = machine.kernel().root_container();
    println!("booted; root container = {root}, boot thread = {thread}");

    // Allocate a category; the calling thread becomes its owner.
    let secret = machine
        .kernel_mut()
        .trap_create_category(thread)
        .expect("category allocation");
    println!(
        "allocated category {secret}; thread label is now {}",
        machine.kernel().thread_label(thread).unwrap()
    );

    // Create a segment tainted in that category: only owners (or threads
    // tainted up to level 3) may observe it.
    let secret_label = Label::builder().set(secret, Level::L3).build();
    let seg = machine
        .kernel_mut()
        .trap_segment_create(thread, root, secret_label, 64, "diary")
        .expect("segment creation");
    let entry = ContainerEntry::new(root, seg);
    machine
        .kernel_mut()
        .trap_segment_write(thread, entry, 0, b"dear diary...")
        .expect("owner can write");
    println!("wrote a secret into segment {seg} labelled {{secret 3, 1}}");

    // A second, unprivileged thread cannot observe it.
    let other = machine
        .kernel_mut()
        .trap_thread_create(
            thread,
            root,
            Label::unrestricted(),
            Label::default_clearance(),
            0,
            "snoop",
        )
        .expect("thread creation");
    match machine.kernel_mut().trap_segment_read(other, entry, 0, 4) {
        Err(SyscallError::CannotObserve(_)) => {
            println!("unprivileged thread was refused: CannotObserve (no read up)");
        }
        other => panic!("expected a label failure, got {other:?}"),
    }

    // Snapshot, crash, and recover: the single-level store brings the whole
    // object graph back, labels included.
    machine.snapshot();
    let mut recovered = machine.crash_and_recover().expect("recovery");
    let data = recovered
        .kernel_mut()
        .trap_segment_read(thread, entry, 0, 13)
        .expect("owner can still read after recovery");
    println!(
        "after crash+recovery the secret is still there: {:?}",
        String::from_utf8_lossy(&data)
    );
}
