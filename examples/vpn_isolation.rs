//! VPN isolation (§6.3): the corporate network and the Internet never mix,
//! except through the VPN client that owns both taint categories.
//!
//! Run with `cargo run --example vpn_isolation`.

use histar::net::VpnIsolation;
use histar::unix::UnixEnv;

fn main() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let vpn = VpnIsolation::start(&mut env, init).expect("vpn setup");
    println!(
        "internet stack taints data in {}, vpn stack in {}",
        vpn.internet.taint, vpn.vpn.taint
    );

    // A frame arrives from the Internet; only the VPN client can move it to
    // the corporate side (decrypting it on the way).
    vpn.internet
        .wire_deliver(&mut env, b"ciphertext from hq".to_vec())
        .unwrap();
    assert!(vpn.pump_inbound(&mut env).unwrap());
    println!("VPN client moved one inbound frame Internet -> corporate network");

    // A corporate application reads it and is now tainted v2...
    let corp_app = env.spawn(init, "/bin/corp-app", None).unwrap();
    let data = vpn.vpn.recv(&mut env, corp_app).unwrap().unwrap();
    println!("corp-app read {} bytes from the VPN side", data.len());

    // ...so the kernel will not let it send anything to the open Internet,
    // even though nothing about corp-app itself is "configured" as secret.
    let leak = vpn
        .internet
        .send(&mut env, corp_app, b"sensitive documents");
    println!("corp-app -> Internet: {leak:?}");
    assert!(leak.is_err());

    // The VPN client itself can still move replies outward.
    vpn.vpn
        .wire_deliver(&mut env, b"reply for hq".to_vec())
        .unwrap();
    assert!(vpn.pump_outbound(&mut env).unwrap());
    println!(
        "outbound frames on the Internet wire: {:?}",
        vpn.internet.wire_collect(&mut env).unwrap().len()
    );
    println!("\nthe two networks are isolated; only the VPN client bridges them.");
}
