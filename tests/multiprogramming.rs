//! Integration test for the trap-dispatch + scheduler stack: a hundred
//! interleaved untrusted login processes on one node complete
//! deterministically, every kernel interaction crossing `Kernel::dispatch`.

use histar::apps::multilogin::{run_multilogin, MultiLoginParams};
use histar::auth::LoginOutcome;
use histar::kernel::sched::StopReason;
use histar::kernel::TraceRecord;

fn trace_of(world: &histar::apps::multilogin::LoginWorld) -> Vec<TraceRecord> {
    world
        .env
        .machine()
        .kernel()
        .syscall_trace()
        .expect("tracing enabled")
        .records()
        .copied()
        .collect()
}

#[test]
fn hundred_interleaved_logins_replay_identically() {
    let params = MultiLoginParams {
        processes: 100,
        users: 10,
        seed: 0xfeed,
        shards: histar::kernel::sched::DEFAULT_SHARDS,
        wrong_every: 9,
        trace_capacity: 1 << 20,
        recorder_capacity: 0,
    };
    let (w1, r1) = run_multilogin(params).expect("scenario");
    let (w2, r2) = run_multilogin(params).expect("scenario");

    assert_eq!(r1.schedule.stop, StopReason::AllComplete);
    assert!(w1.failures.is_empty(), "failures: {:?}", w1.failures);
    assert_eq!(w1.outcomes.len(), 100);
    let granted = w1
        .outcomes
        .iter()
        .filter(|(_, o)| *o == LoginOutcome::Granted)
        .count();
    assert_eq!(granted, 100 - 100 / 9);

    // Multiprogramming really happened: far more context switches than
    // processes, and a dense trapped syscall stream.
    assert!(r1.schedule.stats.context_switches > 200);
    assert!(r1.syscalls > 5_000);
    assert_eq!(
        r1.kernel.syscalls, r1.syscalls,
        "every kernel syscall of the run crossed the dispatch boundary"
    );

    // Determinism: same seed ⇒ identical outcome list, identical schedule,
    // identical audit trace, tick for tick.
    assert_eq!(w1.outcomes, w2.outcomes);
    assert_eq!(r1.schedule.stats.quanta, r2.schedule.stats.quanta);
    assert_eq!(r1.elapsed, r2.elapsed);
    let (t1, t2) = (trace_of(&w1), trace_of(&w2));
    assert!(!t1.is_empty());
    assert_eq!(t1, t2);
}

/// The sharded run queues keep the determinism contract at every width:
/// for a fixed `(seed, shards)` pair the full login workload replays the
/// identical audit trace, at one shard (the classic global round-robin),
/// four and sixteen.
#[test]
fn shard_width_one_four_sixteen_each_replays_identically() {
    for shards in [1usize, 4, 16] {
        let params = MultiLoginParams {
            processes: 40,
            users: 5,
            seed: 0x54a2d,
            shards,
            wrong_every: 0,
            trace_capacity: 1 << 20,
            recorder_capacity: 0,
        };
        let (w1, r1) = run_multilogin(params).expect("scenario");
        let (w2, r2) = run_multilogin(params).expect("scenario");
        assert_eq!(r1.schedule.stop, StopReason::AllComplete);
        assert!(w1.failures.is_empty(), "failures: {:?}", w1.failures);
        assert_eq!(w1.outcomes, w2.outcomes, "shards={shards}");
        assert_eq!(r1.schedule.stats.quanta, r2.schedule.stats.quanta);
        assert_eq!(r1.elapsed, r2.elapsed);
        let (t1, t2) = (trace_of(&w1), trace_of(&w2));
        assert!(!t1.is_empty());
        assert_eq!(
            t1, t2,
            "shards={shards}: same (seed, shards) must replay the identical trace"
        );
    }
}

/// The web-server burst under the same scheduler stack: wake order is a
/// pure function of the seed.  Two runs with the same seed produce the
/// same audit trace tick for tick (every park, wake and label check in
/// the same order), while a different seed reorders the interleaving
/// without changing what is served.
#[test]
fn web_server_wake_order_is_deterministic_per_seed() {
    use histar::httpd::{run_httpd, HttpdParams, HttpdWorld};

    fn httpd_trace(world: &HttpdWorld) -> Vec<TraceRecord> {
        world
            .env
            .machine()
            .kernel()
            .syscall_trace()
            .expect("tracing enabled")
            .records()
            .copied()
            .collect()
    }

    let params = HttpdParams {
        clients: 48,
        users: 4,
        wrong_every: 0,
        seed: 0xd1ce,
        trace_capacity: 1 << 20,
        recorder_capacity: 0,
    };
    let (w1, r1) = run_httpd(params).expect("httpd scenario");
    let (w2, r2) = run_httpd(params).expect("httpd scenario");

    assert_eq!(r1.stop, StopReason::AllComplete);
    assert!(w1.failures.is_empty(), "failures: {:?}", w1.failures);
    assert_eq!(r1.served, 48);

    // Same seed: identical latencies, identical quanta bill, identical
    // audit trace — blocked-thread wakes included, since every wake's
    // subsequent syscalls land in the same trace slots.
    assert_eq!(w1.latencies, w2.latencies);
    assert_eq!(r1.sched.quanta, r2.sched.quanta);
    assert_eq!(r1.elapsed, r2.elapsed);
    let (t1, t2) = (httpd_trace(&w1), httpd_trace(&w2));
    assert!(!t1.is_empty());
    assert_eq!(t1, t2);

    // A different seed reorders the wake interleaving but serves exactly
    // the same burst.
    let (w3, r3) = run_httpd(HttpdParams {
        seed: params.seed ^ 0xffff,
        ..params
    })
    .expect("httpd scenario");
    assert_eq!(r3.served, 48);
    assert!(w3.failures.is_empty(), "failures: {:?}", w3.failures);
    let t3 = httpd_trace(&w3);
    assert!(
        t1 != t3 || w1.latencies != w3.latencies,
        "a different seed should produce a different interleaving"
    );
}

/// A thread blocked on a socket is still killable while parked: the
/// signal-gate alert lands on its completion queue, the scheduler wakes
/// it (an alert wake, not a readiness wake), and it retires even though
/// the socket never becomes readable.
#[test]
fn thread_blocked_on_a_socket_is_killable_while_parked() {
    use histar::kernel::sched::{RunLimit, SchedConfig, SchedContext, Scheduler, Step};
    use histar::kernel::Kernel;
    use histar::net::Netd;
    use histar::unix::UnixEnv;

    struct ParkWorld {
        env: UnixEnv,
        surfer_turns: u64,
        watchdog_turns: u64,
        taken: Option<u64>,
    }
    impl SchedContext for ParkWorld {
        fn sched_kernel(&mut self) -> &mut Kernel {
            self.env.machine_mut().kernel_mut()
        }
    }

    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let netd = Netd::start(&mut env, init, "internet").unwrap();
    // The server owns the network taint (the launcher's trust) but never
    // accepts or writes anything — the surfer will wait forever.
    let server = env
        .spawn_with_label(init, "/usr/sbin/httpd", vec![netd.taint], vec![])
        .unwrap();
    let listener = netd.listen(&mut env, server).unwrap();
    let surfer = netd
        .spawn_tainted(&mut env, init, "/usr/bin/surfer")
        .unwrap();
    let conn = netd.connect(&mut env, surfer, &listener).unwrap();

    let surfer_thread = env.process(surfer).unwrap().thread;
    let server_thread = env.process(server).unwrap().thread;

    let mut sched: Scheduler<ParkWorld> = Scheduler::new(SchedConfig::new().seed(0x5106));
    sched.spawn(
        surfer_thread,
        Box::new(move |world: &mut ParkWorld, _tid| {
            world.surfer_turns += 1;
            if let Some(sig) = world.env.take_signal(surfer).unwrap() {
                world.taken = Some(sig);
                return Step::Done;
            }
            match world.env.read_blocking(surfer, conn, 128).unwrap() {
                None => Step::Block,
                Some(data) => panic!("no server ever writes this connection: {data:?}"),
            }
        }),
    );
    const WATCHDOG_PATIENCE: u64 = 8;
    sched.spawn(
        server_thread,
        Box::new(move |world: &mut ParkWorld, _tid| {
            world.watchdog_turns += 1;
            if world.watchdog_turns <= WATCHDOG_PATIENCE {
                return Step::Yield;
            }
            // The trusted component gives up on the stalled connection and
            // kills its client — which is parked, not runnable.
            world.env.kill(server, surfer, 9).unwrap();
            Step::Done
        }),
    );

    let mut world = ParkWorld {
        env,
        surfer_turns: 0,
        watchdog_turns: 0,
        taken: None,
    };
    let report = sched.run(&mut world, RunLimit::to_completion());

    // The run completed: the parked surfer was woken by the alert and
    // retired, even though its socket never had a byte to read.
    assert_eq!(report.stop, StopReason::AllComplete);
    assert_eq!(
        world.taken,
        Some(9),
        "the signal must reach the parked thread"
    );
    assert_eq!(
        world.surfer_turns, 2,
        "the surfer runs once to park and once to die; parked turns cost nothing"
    );
    assert!(
        sched.stats().alert_wakeups >= 1,
        "the wake must be counted as an alert wake: {:?}",
        sched.stats()
    );
}
