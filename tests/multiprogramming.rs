//! Integration test for the trap-dispatch + scheduler stack: a hundred
//! interleaved untrusted login processes on one node complete
//! deterministically, every kernel interaction crossing `Kernel::dispatch`.

use histar::apps::multilogin::{run_multilogin, MultiLoginParams};
use histar::auth::LoginOutcome;
use histar::kernel::sched::StopReason;
use histar::kernel::TraceRecord;

fn trace_of(world: &histar::apps::multilogin::LoginWorld) -> Vec<TraceRecord> {
    world
        .env
        .machine()
        .kernel()
        .syscall_trace()
        .expect("tracing enabled")
        .records()
        .copied()
        .collect()
}

#[test]
fn hundred_interleaved_logins_replay_identically() {
    let params = MultiLoginParams {
        processes: 100,
        users: 10,
        seed: 0xfeed,
        wrong_every: 9,
        trace_capacity: 1 << 20,
        recorder_capacity: 0,
    };
    let (w1, r1) = run_multilogin(params).expect("scenario");
    let (w2, r2) = run_multilogin(params).expect("scenario");

    assert_eq!(r1.schedule.stop, StopReason::AllComplete);
    assert!(w1.failures.is_empty(), "failures: {:?}", w1.failures);
    assert_eq!(w1.outcomes.len(), 100);
    let granted = w1
        .outcomes
        .iter()
        .filter(|(_, o)| *o == LoginOutcome::Granted)
        .count();
    assert_eq!(granted, 100 - 100 / 9);

    // Multiprogramming really happened: far more context switches than
    // processes, and a dense trapped syscall stream.
    assert!(r1.schedule.context_switches > 200);
    assert!(r1.syscalls > 5_000);
    assert_eq!(
        r1.kernel.syscalls, r1.syscalls,
        "every kernel syscall of the run crossed the dispatch boundary"
    );

    // Determinism: same seed ⇒ identical outcome list, identical schedule,
    // identical audit trace, tick for tick.
    assert_eq!(w1.outcomes, w2.outcomes);
    assert_eq!(r1.schedule.quanta, r2.schedule.quanta);
    assert_eq!(r1.elapsed, r2.elapsed);
    let (t1, t2) = (trace_of(&w1), trace_of(&w2));
    assert!(!t1.is_empty());
    assert_eq!(t1, t2);
}
