//! Cross-crate integration tests: the end-to-end information-flow
//! guarantees the paper's applications rely on.

use histar::apps::{deploy_clamav, wrap_scan};
use histar::auth::{AuthService, AuthSystem, LoginOutcome};
use histar::kernel::syscall::SyscallError;
use histar::label::{Label, Level};
use histar::net::{Netd, VpnIsolation};
use histar::unix::gatecall::{create_service_gate, enter_service, return_from_service};
use histar::unix::process::ExitStatus;
use histar::unix::{UnixEnv, UnixError};

/// Figure 6: the process structure exposes only the exit segment and signal
/// gate; internals are unreachable by other processes.
#[test]
fn process_structure_matches_figure6() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let a = env.spawn(init, "/bin/a", None).unwrap();
    let b = env.spawn(init, "/bin/b", None).unwrap();
    let a_proc = env.process(a).unwrap().clone();
    let b_thread = env.process(b).unwrap().thread;

    // b may read a's exit status segment (it is {pw 0, 1})...
    let kernel = env.machine_mut().kernel_mut();
    let exit_entry =
        histar::kernel::object::ContainerEntry::new(a_proc.process_container, a_proc.exit_segment);
    assert!(kernel.trap_segment_read(b_thread, exit_entry, 0, 8).is_ok());
    // ...but not write it...
    assert!(matches!(
        kernel.trap_segment_write(b_thread, exit_entry, 0, &[1]),
        Err(SyscallError::CannotModify(_))
    ));
    // ...and cannot observe a's internal container at all.
    assert!(matches!(
        kernel.trap_container_list(b_thread, a_proc.internal_container),
        Err(SyscallError::CannotObserve(_))
    ));
}

/// Figure 7: a gate call grants the daemon's privilege for the duration of
/// the call and the return gate restores the caller exactly.
#[test]
fn gate_call_round_trip() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let client = env.spawn(init, "/bin/client", None).unwrap();
    let daemon = env.spawn(init, "/usr/bin/signd", None).unwrap();
    let service = create_service_gate(&mut env, daemon, 0x1000, "timestamp signer").unwrap();

    let client_thread = env.process(client).unwrap().thread;
    let before = env.machine().kernel().thread_label(client_thread).unwrap();
    let session = enter_service(&mut env, client, &service, true).unwrap();
    let daemon_pr = env.process(daemon).unwrap().read_cat;
    let during = env.machine().kernel().thread_label(client_thread).unwrap();
    assert!(during.owns(daemon_pr));
    assert_eq!(during.level(session.taint.unwrap()), Level::L3);
    return_from_service(&mut env, session).unwrap();
    let after = env.machine().kernel().thread_label(client_thread).unwrap();
    assert_eq!(after, before);
}

/// Figures 8–10: authentication grants exactly one user's privilege, and
/// only on a correct password.
#[test]
fn authentication_flow() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let bob = env.create_user("bob").unwrap();
    let mut auth = AuthSystem::new();
    auth.register(AuthService::new(bob.clone(), "s3cret"));
    let login = env.spawn(init, "/bin/login", None).unwrap();

    assert_eq!(
        auth.login(&mut env, login, "bob", "wrong").unwrap(),
        LoginOutcome::BadPassword
    );
    assert_eq!(
        auth.login(&mut env, login, "bob", "s3cret").unwrap(),
        LoginOutcome::Granted
    );
    let thread = env.process(login).unwrap().thread;
    assert!(env
        .machine()
        .kernel()
        .thread_label(thread)
        .unwrap()
        .owns(bob.read_cat));
}

/// Figure 11: VPN isolation keeps the two networks apart end to end.
#[test]
fn vpn_isolation_end_to_end() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let vpn = VpnIsolation::start(&mut env, init).unwrap();
    vpn.internet
        .wire_deliver(&mut env, b"from the internet".to_vec())
        .unwrap();
    assert!(vpn.pump_inbound(&mut env).unwrap());
    let app = env.spawn(init, "/bin/app", None).unwrap();
    let payload = vpn.vpn.recv(&mut env, app).unwrap().unwrap();
    assert_eq!(payload, b"from the internet");
    assert!(vpn.internet.send(&mut env, app, b"leak").is_err());
}

/// Figures 1/2/4: the whole ClamAV scenario, including the attacks listed in
/// the introduction.
#[test]
fn clamav_end_to_end() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let netd = Netd::start(&mut env, init, "internet").unwrap();
    let deployment = deploy_clamav(&mut env, "bob").unwrap();
    env.mkdir(init, "/home", None).unwrap();
    env.write_file_as(
        init,
        "/home/secrets.db",
        b"ssn=123-45-6789 EICAR-STANDARD-ANTIVIRUS-TEST",
        Some(deployment.user.private_file_label()),
    )
    .unwrap();

    let report = wrap_scan(&mut env, &deployment, &["/home/secrets.db"]).unwrap();
    assert!(report.results[0].1, "the test signature is detected");
    assert!(!report.leak_detected);
    // Attack 1: direct TCP exfiltration.
    assert!(netd.send(&mut env, deployment.scanner, b"ssn").is_err());
    // Attack 4: drop the data in /tmp for the update daemon.
    assert!(env
        .write_file_as(deployment.scanner, "/tmp-x", b"ssn", None)
        .is_err());
    // The update daemon itself can never read the user data.
    assert!(env
        .read_file_as(deployment.update_daemon, "/home/secrets.db")
        .is_err());
}

/// Unix semantics over the untrusted library: fork/exec/wait, pipes and the
/// file system all work while every access stays label-checked.
#[test]
fn unix_environment_smoke() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/etc-motd", b"welcome to histar", None)
        .unwrap();
    // The pipe is created before forking so the child inherits both ends.
    let (r, w) = env.pipe(init).unwrap();
    let child = env.fork(init).unwrap();
    assert_eq!(
        env.read_file_as(child, "/etc-motd").unwrap(),
        b"welcome to histar"
    );
    env.write(init, w, b"ping").unwrap();
    assert_eq!(env.read(child, r, 4).unwrap(), b"ping");
    env.exit(child, ExitStatus::Exited(0)).unwrap();
    assert!(env.wait(init, child).unwrap().success());
}

/// The single-level store: a snapshot survives a crash with labels intact,
/// and unsynced work is lost — there is no trusted boot script to rebuild
/// anything.
#[test]
fn persistence_across_crash() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let secret_label = {
        let user = env.create_user("carol").unwrap();
        user.private_file_label()
    };
    env.write_file_as(init, "/persistent", b"survives", Some(secret_label.clone()))
        .unwrap();
    env.sync_all();
    env.write_file_as(init, "/ephemeral", b"lost", None)
        .unwrap();

    let machine = {
        let m = env.machine_mut();
        std::mem::replace(m, histar::kernel::Machine::boot(Default::default()))
    };
    let recovered = machine.crash_and_recover().unwrap();
    let segments: Vec<(Label, Vec<u8>)> = recovered
        .kernel()
        .objects()
        .filter_map(|(_, o)| match &o.body {
            histar::kernel::bodies::ObjectBody::Segment(s) => {
                Some((o.header.label.clone(), s.bytes.clone()))
            }
            _ => None,
        })
        .collect();
    let persistent = segments
        .iter()
        .find(|(_, bytes)| bytes.windows(8).any(|w| w == b"survives"))
        .expect("synced file survives the crash");
    assert_eq!(persistent.0, secret_label, "labels persist with the data");
    assert!(!segments
        .iter()
        .any(|(_, b)| b.windows(4).any(|w| w == b"lost")));
}

/// Labels can express Unix permission bits, but also policies Unix cannot:
/// a single thread holding two users' privilege at once.
#[test]
fn multi_user_privilege() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let alice = env.create_user("alice").unwrap();
    let bob = env.create_user("bob").unwrap();
    env.write_file_as(init, "/af", b"a", Some(alice.private_file_label()))
        .unwrap();
    env.write_file_as(init, "/bf", b"b", Some(bob.private_file_label()))
        .unwrap();
    // init owns both users' categories (it created the accounts), so it can
    // read both files; a process with only bob's privilege cannot read
    // alice's.
    assert!(env.read_file_as(init, "/af").is_ok());
    assert!(env.read_file_as(init, "/bf").is_ok());
    let bob_shell = env.spawn(init, "/bin/sh", Some("bob")).unwrap();
    assert!(env.read_file_as(bob_shell, "/bf").is_ok());
    assert!(matches!(
        env.read_file_as(bob_shell, "/af"),
        Err(UnixError::Kernel(SyscallError::CannotObserve(_)))
    ));
}

/// §5 over the VFS: `/proc` entries are label-filtered by the kernel.  A
/// tainted observer cannot stat an untainted process's `/proc` entry —
/// entering the PID directory requires observing that process's internal
/// container (`{pr 3, pw 0, 1}`), which the kernel denies — while the
/// process itself (whose label owns `pr`) reads its own entry freely.
#[test]
fn proc_entries_are_label_filtered() {
    use histar::label::Level;

    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // A taint category owned by init; the observer starts tainted in it.
    let init_thread = env.process(init).unwrap().thread;
    let taint = env.kernel_mut().trap_create_category(init_thread).unwrap();
    env.process_record_mut(init)
        .unwrap()
        .extra_ownership
        .push(taint);
    let observer = env
        .spawn_with_label(init, "/bin/observer", vec![], vec![(taint, Level::L3)])
        .unwrap();
    let victim = env.spawn(init, "/bin/victim", None).unwrap();

    // PIDs are public: anyone can list /proc.
    let pids = env.readdir(observer, "/proc").unwrap();
    assert!(pids.iter().any(|e| e.name == victim.to_string()));

    // The tainted observer cannot stat (or read) the victim's entry.
    assert!(matches!(
        env.stat(observer, &format!("/proc/{victim}/status")),
        Err(UnixError::Kernel(SyscallError::CannotObserve(_)))
    ));
    assert!(matches!(
        env.read_file_as(observer, &format!("/proc/{victim}/status")),
        Err(UnixError::Kernel(SyscallError::CannotObserve(_)))
    ));

    // An untainted stranger is denied just the same: the gate is the
    // victim's `pr` category, not the observer's taint.
    let stranger = env.spawn(init, "/bin/stranger", None).unwrap();
    assert!(env
        .stat(stranger, &format!("/proc/{victim}/status"))
        .is_err());

    // Labels that admit the entry open it: the victim reads its own.
    let status = env
        .read_file_as(victim, &format!("/proc/{victim}/status"))
        .unwrap();
    assert!(String::from_utf8(status)
        .unwrap()
        .contains("state:\trunning"));
}

/// §6.1's web-server isolation, attacked directly: a worker holding
/// *alice's* privilege (it legitimately serves her files) obtains a
/// descriptor for **bob's** connection and tries to write her secret to
/// it.  Descriptor state is just numbers — the protection is the label on
/// the connection segment, and the kernel stops the write cold.  The
/// denial lands in the syscall audit trace, and the only process that
/// could have bridged the two users is the launcher, the one piece of
/// code trusted with the network taint category.
#[test]
fn compromised_worker_cannot_leak_alice_files_to_bobs_connection() {
    use histar::kernel::TraceRecord;
    use histar::unix::fdtable::{FdKind, FdState, FLAG_SOCK_SERVER};
    use histar::unix::gatecall;

    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let netd = Netd::start(&mut env, init, "internet").unwrap();

    // Two users with private home pages under /persist/home.
    let mut auth = AuthSystem::new();
    let alice = env.create_user("alice").unwrap();
    env.create_user("bob").unwrap();
    auth.register(AuthService::new(alice.clone(), "a-pass"));
    env.mkdir(init, "/persist/home", None).unwrap();
    env.mkdir(init, "/persist/home/alice", None).unwrap();
    let alice_shell = env.spawn(init, "/bin/sh", Some("alice")).unwrap();
    env.write_file_as(
        alice_shell,
        "/persist/home/alice/secret.html",
        b"<html>alice's diary</html>",
        Some(alice.private_file_label()),
    )
    .unwrap();

    // The launcher: the single trusted component, owning the network
    // taint category.  It authenticates as alice (the auth gates grant it
    // her categories, like any login) so it can spawn her worker.
    let launcher = env
        .spawn_with_label(init, "/usr/sbin/httpd", vec![netd.taint], vec![])
        .unwrap();
    let listener = netd.listen(&mut env, launcher).unwrap();
    assert_eq!(
        auth.login(&mut env, launcher, "alice", "a-pass").unwrap(),
        LoginOutcome::Granted
    );

    // Alice and bob connect; the launcher accepts both connections and
    // thereby owns each connection's `c_r`/`c_w` pair.
    let alice_client = netd
        .spawn_tainted(&mut env, init, "/usr/bin/alice-browser")
        .unwrap();
    let bob_client = netd
        .spawn_tainted(&mut env, init, "/usr/bin/bob-browser")
        .unwrap();
    let alice_client_fd = netd.connect(&mut env, alice_client, &listener).unwrap();
    netd.connect(&mut env, bob_client, &listener).unwrap();
    let alice_conn = netd
        .accept(&mut env, launcher, listener.fd)
        .unwrap()
        .unwrap();
    let bob_conn = netd
        .accept(&mut env, launcher, listener.fd)
        .unwrap()
        .unwrap();

    // Alice's worker: her categories, net-tainted from birth, granted
    // *her* connection only.
    let worker = env
        .spawn_with_label(
            launcher,
            "/usr/bin/worker-alice",
            vec![alice.read_cat, alice.write_cat],
            vec![(netd.taint, Level::L2)],
        )
        .unwrap();
    gatecall::grant_categories(
        &mut env,
        launcher,
        worker,
        &[alice_conn.taint_cat, alice_conn.write_cat],
    )
    .unwrap();
    let alice_state = env.fd_snapshot(launcher, alice_conn.fd).unwrap();
    let worker_alice_fd = env
        .install_descriptor(
            worker,
            FdState {
                kind: FdKind::Socket,
                target: alice_state.target,
                target_container: alice_state.target_container,
                position: 0,
                flags: FLAG_SOCK_SERVER,
                refs: 1,
            },
        )
        .unwrap();

    // The legitimate path works end to end: the worker reads alice's
    // secret (it owns her read category) and serves it to alice.
    let secret = env
        .read_file_as(worker, "/persist/home/alice/secret.html")
        .unwrap();
    assert_eq!(secret, b"<html>alice's diary</html>");
    env.write(worker, worker_alice_fd, &secret).unwrap();
    assert_eq!(env.read(alice_client, alice_client_fd, 64).unwrap(), secret);

    // Now the worker goes rogue.  It forges a descriptor for bob's
    // connection — the numbers are no secret — and tries to exfiltrate
    // the page it just read.  Audit tracing is on for the attempt.
    env.kernel_mut().enable_syscall_trace(1 << 16);
    let bob_state = env.fd_snapshot(launcher, bob_conn.fd).unwrap();
    let stolen_fd = env
        .install_descriptor(
            worker,
            FdState {
                kind: FdKind::Socket,
                target: bob_state.target,
                target_container: bob_state.target_container,
                position: 0,
                flags: FLAG_SOCK_SERVER,
                refs: 1,
            },
        )
        .unwrap();

    // Trusted-code surface: of every process in the scenario, exactly one
    // — the launcher — owns the network taint category `i`.  Everything
    // else (netd, workers, clients) runs without cross-user privilege.
    let mut trusted = 0;
    for pid in [netd.pid, launcher, worker, alice_client, bob_client] {
        let thread = env.process(pid).unwrap().thread;
        let label = env.machine().kernel().thread_label(thread).unwrap();
        if label.owns(netd.taint) {
            trusted += 1;
        }
    }
    assert_eq!(
        trusted, 1,
        "trusted surface: {trusted} of 5 server-side processes own the \
         network taint category; only the launcher may"
    );

    // The leak attempt fails closed.  The worker owns neither of bob's
    // connection categories: it cannot even observe the connection ring
    // (`c_r 3` in the connection label), so the descriptor write dies on
    // the very first label check.
    assert!(matches!(
        env.read(worker, stolen_fd, 64),
        Err(UnixError::Kernel(SyscallError::CannotObserve(_)))
    ));
    let err = env.write(worker, stolen_fd, &secret).unwrap_err();
    assert!(
        matches!(
            err,
            UnixError::Kernel(SyscallError::CannotObserve(_) | SyscallError::CannotModify(_))
        ),
        "expected a label-check denial on bob's connection, got {err:?}"
    );
    // Even aiming the raw segment-write syscall straight at bob's
    // connection segment — skipping the descriptor layer entirely — the
    // kernel refuses: `c_w 0` in the connection label, and the worker's
    // level is 1.
    let worker_thread = env.process(worker).unwrap().thread;
    let bob_ring =
        histar::kernel::object::ContainerEntry::new(bob_state.target_container, bob_state.target);
    let raw = env
        .kernel_mut()
        .trap_segment_write(worker_thread, bob_ring, 0, &secret);
    assert!(
        matches!(
            raw,
            Err(SyscallError::CannotModify(_) | SyscallError::CannotObserve(_))
        ),
        "raw segment write must be refused, got {raw:?}"
    );

    // The denial is visible in the audit trace: failed segment syscalls
    // from the worker's thread, with no successful write of bob's
    // connection anywhere.
    let records: Vec<TraceRecord> = env
        .machine()
        .kernel()
        .syscall_trace()
        .expect("tracing enabled")
        .records()
        .copied()
        .collect();
    assert!(
        records
            .iter()
            .any(|r| r.tid == worker_thread && r.syscall == "segment_write" && !r.ok),
        "the refused write must appear in the audit trace"
    );
    // From the worker's first denial onward, none of its segment writes
    // succeeded: the attack window contains denials only.
    let first_denial = records
        .iter()
        .find(|r| r.tid == worker_thread && !r.ok)
        .expect("a denial from the worker's thread")
        .seq;
    assert!(
        !records.iter().any(|r| {
            r.tid == worker_thread && r.syscall == "segment_write" && r.ok && r.seq > first_denial
        }),
        "the worker must not have written any segment after its first denial"
    );
}
