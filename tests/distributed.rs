//! Two-node integration test: the untrusted-login scenario with the
//! authentication gate on a remote node (the ISSUE's acceptance scenario).
//!
//! Node 1 hosts bob's account: his semi-private profile (label
//! `{ur 2, uw 0, 1}`) and a login service behind a gate whose clearance
//! `{login 0, 2}` admits only threads owning the `login` category.  Node 0
//! runs sshd.  The same remote gate call is asserted both ways:
//!
//! * with a proper delegation of `login` to node 0, the call passes the
//!   remote kernel's clearance check and the profile comes back — tainted,
//!   across the wire, in (the node-0 shadow of) `ur`;
//! * without the delegation certificate, the receiving kernel refuses the
//!   gate entry: the error is the kernel's label check, not a policy bolted
//!   on top.

use histar::exporter::Fabric;
use histar::label::{Label, Level};
use histar::unix::gatecall::raise_taint_for;
use histar::unix::process::Pid;

const PASSWORD: &str = "correct horse battery";

/// Builds node 1's side: bob's account, his profile file, the `login`
/// category and the gated auth service.  Returns (provider pid, login cat).
fn setup_auth_node(fabric: &mut Fabric) -> (Pid, histar::label::Category) {
    let init = fabric.nodes[1].init();

    // bob's account and profile on the auth node.
    let (provider, login_cat, profile_label) = {
        let n = &mut fabric.nodes[1];
        let bob = n.env.create_user("bob").unwrap();
        // `{ur 2, uw 0, 1}`: readable only under bob's read taint, writable
        // only with his write privilege.
        let profile_label = Label::builder()
            .set(bob.read_cat, Level::L2)
            .set(bob.write_cat, Level::L0)
            .build();
        n.env
            .write_file_as(
                init,
                "/bob-profile",
                b"bob: flags=admin",
                Some(profile_label.clone()),
            )
            .unwrap();

        // The login frontend category: only delegated frontends may even
        // invoke the auth gate.
        let provider = n.env.spawn(init, "/usr/sbin/authd", None).unwrap();
        let thread = n.env.process(provider).unwrap().thread;
        let login_cat = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(thread)
            .unwrap();
        (provider, login_cat, profile_label)
    };

    let clearance = Label::builder()
        .set(login_cat, Level::L0)
        .default_level(Level::L2)
        .build();
    fabric
        .register_gated_service(
            1,
            "auth.login",
            provider,
            clearance,
            Box::new(move |env, worker, req| {
                let text = String::from_utf8_lossy(req);
                let Some((user, pass)) = text.split_once('\0') else {
                    return b"ERR malformed".to_vec();
                };
                if user != "bob" || pass != PASSWORD {
                    return b"DENIED".to_vec();
                }
                // The worker reads bob's profile by *tainting itself* — it
                // does not own ur, so the taint sticks and travels back with
                // the reply.  It reads through the file's segment directly
                // (as a mapped read would); the fd-table path would need a
                // writable descriptor segment, which a tainted thread
                // rightly cannot touch.
                if raise_taint_for(env, worker, &profile_label).is_err() {
                    return b"ERR cannot taint".to_vec();
                }
                let st = match env.stat(worker, "/bob-profile") {
                    Ok(st) => st,
                    Err(e) => return format!("ERR {e}").into_bytes(),
                };
                let entry = histar::kernel::object::ContainerEntry::new(env.fs_root(), st.object);
                let thread = env.process(worker).unwrap().thread;
                match env
                    .machine_mut()
                    .kernel_mut()
                    .trap_segment_read(thread, entry, 0, st.len)
                {
                    Ok(bytes) => bytes,
                    Err(e) => format!("ERR {e}").into_bytes(),
                }
            }),
        )
        .unwrap();

    // bob's categories must be entrusted to the auth node's exporter, or
    // the tainted reply could never leave the machine.
    let bob = fabric.nodes[1].env.user("bob").unwrap();
    fabric.export_category(1, init, bob.read_cat).unwrap();
    fabric.export_category(1, init, bob.write_cat).unwrap();

    (provider, login_cat)
}

#[test]
fn remote_login_succeeds_with_delegation_and_fails_without() {
    let mut fabric = Fabric::new(2);
    let (provider, login_cat) = setup_auth_node(&mut fabric);

    let sshd = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/usr/sbin/sshd", None).unwrap()
    };

    // --- Outcome 1: WITHOUT a delegation certificate, the remote KERNEL's
    // label check refuses the call (the worker cannot pass the auth gate's
    // clearance).
    let request = format!("bob\0{PASSWORD}").into_bytes();
    let err = fabric
        .remote_call(0, sshd, 1, "auth.login", &request, None, &[])
        .unwrap_err();
    assert!(
        err.is_label_check(),
        "without delegation the kernel must refuse, got: {err}"
    );
    assert!(
        err.to_string().contains("clearance"),
        "the refusal is the gate clearance check: {err}"
    );

    // --- Outcome 2: WITH a proper delegation the same call succeeds.
    let shadow_login = fabric.delegate(1, provider, login_cat, 0).unwrap();
    fabric.grant_shadow(0, sshd, shadow_login).unwrap();

    // A wrong password is refused by the service itself (one bit leaks, as
    // in §6.2 — nothing else).
    let bad = fabric
        .remote_call(
            0,
            sshd,
            1,
            "auth.login",
            b"bob\0hunter2",
            None,
            &[shadow_login],
        )
        .unwrap();
    assert_eq!(fabric.read_reply(0, sshd, &bad).unwrap(), b"DENIED");

    // The right password returns bob's profile...
    let reply = fabric
        .remote_call(0, sshd, 1, "auth.login", &request, None, &[shadow_login])
        .unwrap();
    // ...whose label crossed the wire: the reply segment on node 0 is
    // tainted at level 2 in the node-0 shadow of bob's read category.
    let reply_label = fabric.reply_label(0, &reply).unwrap();
    let tainted_entries: Vec<Level> = reply_label.entries().map(|(_, l)| l).collect();
    assert!(
        tainted_entries.contains(&Level::L2),
        "the profile's ur taint must survive the network hop: {reply_label}"
    );

    // sshd accepts the taint and reads the profile.
    let bytes = fabric.read_reply(0, sshd, &reply).unwrap();
    assert_eq!(bytes, b"bob: flags=admin");

    // The taint sticks on node 0 exactly as it would on node 1: the
    // now-tainted sshd can no longer write untainted files.
    let n = &mut fabric.nodes[0];
    let err = n
        .env
        .write_file_as(sshd, "/leak", b"bob: flags=admin", None)
        .unwrap_err();
    assert!(
        matches!(
            err,
            histar::unix::UnixError::Kernel(histar::kernel::syscall::SyscallError::CannotModify(_))
                | histar::unix::UnixError::Kernel(histar::kernel::syscall::SyscallError::Label(_))
        ),
        "remote taint must block local exfiltration, got {err:?}"
    );
}

#[test]
fn delegation_is_scoped_to_the_delegated_node() {
    // A third node that was never delegated the login category hits the
    // same kernel refusal — delegation to node 0 says nothing about node 2.
    let mut fabric = Fabric::new(3);
    let (provider, login_cat) = setup_auth_node(&mut fabric);
    let shadow0 = fabric.delegate(1, provider, login_cat, 0).unwrap();

    let sshd0 = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/usr/sbin/sshd", None).unwrap()
    };
    fabric.grant_shadow(0, sshd0, shadow0).unwrap();
    let request = format!("bob\0{PASSWORD}").into_bytes();
    assert!(fabric
        .remote_call(0, sshd0, 1, "auth.login", &request, None, &[shadow0])
        .is_ok());

    let sshd2 = {
        let n = &mut fabric.nodes[2];
        let init = n.init();
        n.env.spawn(init, "/usr/sbin/sshd", None).unwrap()
    };
    let err = fabric
        .remote_call(2, sshd2, 1, "auth.login", &request, None, &[])
        .unwrap_err();
    assert!(err.is_label_check(), "{err}");
}

#[test]
fn remote_taint_survives_a_second_hop() {
    // Taint picked up on node 1 rides a reply to node 0 and then a further
    // request to node 2, arriving as a shadow-of-a-shadow that still maps
    // back to bob's original category.
    let mut fabric = Fabric::new(3);
    let (provider, login_cat) = setup_auth_node(&mut fabric);
    let shadow_login = fabric.delegate(1, provider, login_cat, 0).unwrap();

    let sshd = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/usr/sbin/sshd", None).unwrap()
    };
    fabric.grant_shadow(0, sshd, shadow_login).unwrap();
    let request = format!("bob\0{PASSWORD}").into_bytes();
    let reply = fabric
        .remote_call(0, sshd, 1, "auth.login", &request, None, &[shadow_login])
        .unwrap();
    let reply_label = fabric.reply_label(0, &reply).unwrap();
    let profile = fabric.read_reply(0, sshd, &reply).unwrap();

    // An archive service on node 2 that just stores what it is sent.
    let archivist = {
        let n = &mut fabric.nodes[2];
        let init = n.init();
        n.env.spawn(init, "/usr/bin/archived", None).unwrap()
    };
    fabric
        .register_service(
            2,
            "archive",
            archivist,
            Box::new(|_e, _w, req| req.to_vec()),
        )
        .unwrap();

    // sshd forwards the profile, declaring its (tainted) label; node 0's
    // exporter owns the shadow category (it created it), so the taint is
    // exportable and arrives on node 2 still at level 2.
    let fwd = fabric
        .remote_call(0, sshd, 2, "archive", &profile, Some(reply_label), &[])
        .unwrap();
    let fwd_label = fabric.reply_label(0, &fwd).unwrap();
    assert!(
        fwd_label.entries().any(|(_, l)| l == Level::L2),
        "taint must survive the second hop: {fwd_label}"
    );
}
